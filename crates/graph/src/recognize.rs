//! Structure detection: which graph family is this?
//!
//! The paper's splitting-set theorems are *per family* — grids get
//! GridSplit (Theorem 19), forests get the smallest-subtree-first DFS
//! splitter, paths get prefix splitting with `σ_p ≤ 2` — so an automatic
//! splitter choice needs to know which family an anonymous [`Graph`]
//! belongs to. [`recognize`] classifies a graph as (in order of
//! preference) a disjoint union of paths, a forest, a full rectangular
//! lattice (with the integer embedding reconstructed, so GridSplit can run
//! on it), or arbitrary.
//!
//! Lattice recognition is *sound but deliberately not complete*: the
//! reconstruction handles full axis-aligned boxes `[0,n₁)×…×[0,n_d)` in
//! any dimension, and every accepted embedding is verified edge-by-edge
//! (edges ⟺ `L1` distance 1), so a false positive is impossible — an
//! irregular grid subset simply falls through to [`Structure::Arbitrary`].
//! Callers that *know* their geometry (percolation subsets, blobs) should
//! carry a [`GridGraph`] instead of a bare [`Graph`] and skip detection.

use std::collections::HashMap;

use crate::gen::grid::GridGraph;
use crate::graph::{Graph, VertexId};

/// The graph family detected by [`recognize`].
#[derive(Clone, Debug)]
pub enum Structure {
    /// A disjoint union of simple paths (isolated vertices allowed).
    /// `positions[v]` orders the vertices along their paths: sorting by it
    /// walks each path end to end, one path after another.
    Path {
        /// Linear position key per vertex (paths concatenated).
        positions: Vec<i64>,
    },
    /// An acyclic graph that is not a union of paths.
    Forest,
    /// A full rectangular lattice; carries the reconstructed embedding
    /// (vertex ids identical to the input graph's).
    Grid(Box<GridGraph>),
    /// None of the above.
    Arbitrary,
}

impl Structure {
    /// Short family name, for reports and tests.
    pub fn name(&self) -> &'static str {
        match self {
            Structure::Path { .. } => "path",
            Structure::Forest => "forest",
            Structure::Grid(_) => "grid",
            Structure::Arbitrary => "arbitrary",
        }
    }
}

thread_local! {
    /// Per-thread count of [`recognize`] invocations — a deterministic
    /// observability counter (monotone, never reset) for the
    /// construction-cost regression tests: an explicit splitter choice
    /// must not pay the recognition pass, and the warm artifact path must
    /// not re-run it on a cache hit.
    static RECOGNITIONS: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// How many times [`recognize`] has run on this thread. Subtract two
/// snapshots around a region to count the recognitions it performed;
/// see `tests/api.rs` (workspace root) for the regression pattern.
pub fn recognition_count() -> u64 {
    RECOGNITIONS.with(|c| c.get())
}

/// Classify `g` into a [`Structure`].
///
/// Runs in `O((n + m)·d)` (the lattice attempt dominates and bails out
/// early on non-lattices).
pub fn recognize(g: &Graph) -> Structure {
    RECOGNITIONS.with(|c| c.set(c.get() + 1));
    let n = g.num_vertices();
    let (_, components) = g.components();
    let is_forest = g.num_edges() + components == n;
    if is_forest && g.max_degree() <= 2 {
        return Structure::Path {
            positions: path_positions(g),
        };
    }
    if is_forest {
        return Structure::Forest;
    }
    match try_lattice_embedding(g) {
        Some(grid) => Structure::Grid(Box::new(grid)),
        None => Structure::Arbitrary,
    }
}

/// Linear positions for a disjoint union of simple paths: walk each
/// component from one of its endpoints, numbering vertices consecutively
/// with a global counter.
///
/// # Panics
/// Panics if `g` is not a union of paths (some vertex has degree > 2 or a
/// component is a cycle).
pub fn path_positions(g: &Graph) -> Vec<i64> {
    let n = g.num_vertices();
    assert!(
        g.max_degree() <= 2,
        "path_positions requires max degree <= 2"
    );
    let mut pos = vec![0i64; n];
    let mut seen = vec![false; n];
    let mut next = 0i64;
    // Endpoints first (degree <= 1); a leftover unseen vertex would mean a
    // cycle component.
    for start in (0..n as u32).filter(|&v| g.degree(v) <= 1) {
        if seen[start as usize] {
            continue;
        }
        let mut prev: Option<VertexId> = None;
        let mut cur = start;
        loop {
            seen[cur as usize] = true;
            pos[cur as usize] = next;
            next += 1;
            let step = g
                .neighbors(cur)
                .iter()
                .map(|&(nb, _)| nb)
                .find(|&nb| Some(nb) != prev && !seen[nb as usize]);
            match step {
                Some(nb) => {
                    prev = Some(cur);
                    cur = nb;
                }
                None => break,
            }
        }
    }
    assert!(
        seen.iter().all(|&s| s),
        "path_positions requires acyclic components"
    );
    pos
}

/// Try to reconstruct an integer lattice embedding of `g`.
///
/// Succeeds exactly on graphs isomorphic to a full rectangular lattice
/// `[0,n₁)×…×[0,n_d)` with every extent ≥ 2 (lower-dimensional boxes are
/// recognized at their effective dimension). The embedding is anchored at
/// a minimum-degree vertex (a lattice corner) and grown layer by layer:
/// a vertex with one already-placed neighbor continues that neighbor's
/// ray; a vertex with several takes their componentwise maximum. The
/// candidate embedding is then verified — every edge must join points at
/// `L1` distance exactly 1 and every distance-1 pair must be an edge — so
/// the function never returns a wrong embedding.
pub fn try_lattice_embedding(g: &Graph) -> Option<GridGraph> {
    let n = g.num_vertices();
    if n == 0 || !g.is_connected() {
        return None;
    }
    let v0 = (0..n as u32).min_by_key(|&v| g.degree(v))?;
    let dim = g.degree(v0);
    if dim == 0 || g.max_degree() > 2 * dim {
        return None;
    }

    let mut coord: Vec<Option<Vec<i64>>> = vec![None; n];
    let mut ray: Vec<Vec<i64>> = vec![vec![]; n]; // discovery direction
    let mut occupied: HashMap<Vec<i64>, VertexId> = HashMap::with_capacity(n);
    let mut next_axis = 0usize;

    coord[v0 as usize] = Some(vec![0; dim]);
    occupied.insert(vec![0; dim], v0);
    let mut queue = std::collections::VecDeque::from([v0]);
    let mut enqueued = vec![false; n];
    enqueued[v0 as usize] = true;

    while let Some(v) = queue.pop_front() {
        for &(nb, _) in g.neighbors(v) {
            if !enqueued[nb as usize] {
                enqueued[nb as usize] = true;
                queue.push_back(nb);
            }
        }
        if v == v0 {
            continue;
        }
        let placed: Vec<&Vec<i64>> = g
            .neighbors(v)
            .iter()
            .filter_map(|&(nb, _)| coord[nb as usize].as_ref())
            .collect();
        let c = match placed.len() {
            0 => return None, // BFS order guarantees a placed neighbor
            1 => {
                let p = placed[0];
                let from = *occupied.get(p).expect("placed coords are occupied");
                if from == v0 {
                    // A fresh axis out of the corner.
                    if next_axis >= dim {
                        return None;
                    }
                    let mut c = vec![0i64; dim];
                    c[next_axis] = 1;
                    next_axis += 1;
                    c
                } else {
                    // Continue the ray that discovered `from`.
                    let dir = &ray[from as usize];
                    if dir.is_empty() {
                        return None;
                    }
                    p.iter().zip(dir).map(|(a, b)| a + b).collect()
                }
            }
            _ => {
                // Componentwise max of the placed neighbors; each must end
                // up at L1 distance 1 from it.
                let mut c = placed[0].clone();
                for p in &placed[1..] {
                    for (a, &b) in c.iter_mut().zip(p.iter()) {
                        *a = (*a).max(b);
                    }
                }
                if placed.iter().any(|p| l1(&c, p) != 1) {
                    return None;
                }
                c
            }
        };
        let anchor = placed[0].clone();
        if occupied.insert(c.clone(), v).is_some() {
            return None; // collision: not an injective embedding
        }
        ray[v as usize] = c.iter().zip(&anchor).map(|(a, b)| a - b).collect();
        coord[v as usize] = Some(c);
    }

    // Verification: edges ⟺ L1 distance 1.
    let coords: Vec<Vec<i64>> = coord.into_iter().collect::<Option<_>>()?;
    for &(u, v) in g.edge_list() {
        if l1(&coords[u as usize], &coords[v as usize]) != 1 {
            return None;
        }
    }
    let mut probe = vec![0i64; dim];
    for v in 0..n as u32 {
        probe.copy_from_slice(&coords[v as usize]);
        for axis in 0..dim {
            for delta in [-1i64, 1] {
                probe[axis] += delta;
                if let Some(&u) = occupied.get(&probe) {
                    if !g.has_edge(v, u) {
                        return None;
                    }
                }
                probe[axis] -= delta;
            }
        }
    }
    let flat: Vec<i64> = coords.into_iter().flatten().collect();
    Some(GridGraph::from_graph_coords(g.clone(), dim, flat))
}

fn l1(a: &[i64], b: &[i64]) -> i64 {
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum()
}

/// Try to identify `g` as a torus lattice `Z_{e₁} × … × Z_{e_d}` in the
/// odometer vertex layout of [`crate::gen::lattice::torus`] (axis 0
/// fastest).
///
/// Sound but deliberately layout-sensitive: candidate extent vectors are
/// enumerated from the factorizations of `n` (pruned by the regular
/// degree a torus must have) and each candidate is **verified by exact
/// edge-set comparison** against the generator, so a `Some` answer is
/// always a true torus — a relabeled torus simply falls through to
/// `None`, which downstream consumers (the structure-aware lower bounds
/// in `mmb-core`) treat as "no structural certificate". Extents of 1 are
/// never reported (they contribute no edges); the all-2 torus is the
/// hypercube and is reported here too if the layout matches.
///
/// The enumeration is capped (dimension ≤ 6, ≤ 512 candidate
/// verifications) so the hook stays cheap on highly composite `n`.
pub fn try_torus_dims(g: &Graph) -> Option<Vec<usize>> {
    let n = g.num_vertices();
    if n < 2 || g.num_edges() == 0 || !g.is_connected() {
        return None;
    }
    // A torus is regular; the degree pins down the extent profile:
    // each extent ≥ 3 contributes 2 to the degree, each extent of 2
    // contributes 1.
    let deg = g.degree(0);
    if (1..n as u32).any(|v| g.degree(v) != deg) {
        return None;
    }
    let mut budget = 512usize;
    let mut dims = Vec::new();
    try_torus_rec(g, n, deg, &mut dims, &mut budget)
}

/// DFS over ordered factorizations of `remaining` into extents ≥ 2 whose
/// degree contributions can still reach `deg_left`. Ordered (not sorted)
/// enumeration matters: the odometer layout is not symmetric under axis
/// permutation, so `[4, 5]` and `[5, 4]` are distinct candidates.
fn try_torus_rec(
    g: &Graph,
    remaining: usize,
    deg_left: usize,
    dims: &mut Vec<usize>,
    budget: &mut usize,
) -> Option<Vec<usize>> {
    if remaining == 1 {
        if deg_left != 0 || dims.is_empty() {
            return None;
        }
        if *budget == 0 {
            return None;
        }
        *budget -= 1;
        // The odometer layout fixes vertex ids, so equality of edge lists
        // is a complete (and sound) isomorphism check for this layout.
        let candidate = crate::gen::lattice::torus(dims);
        if candidate.edge_list() == g.edge_list() {
            return Some(dims.clone());
        }
        return None;
    }
    if dims.len() >= 6 || *budget == 0 {
        return None;
    }
    let mut e = 2usize;
    while e <= remaining {
        if remaining.is_multiple_of(e) {
            let contrib = if e >= 3 { 2 } else { 1 };
            if deg_left >= contrib {
                dims.push(e);
                if let Some(found) =
                    try_torus_rec(g, remaining / e, deg_left - contrib, dims, budget)
                {
                    return Some(found);
                }
                dims.pop();
            }
        }
        e += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::grid::GridGraph;
    use crate::gen::misc::{complete, cycle, ladder, path, star};
    use crate::gen::tree::{caterpillar, complete_binary_tree, random_tree};
    use crate::graph::graph_from_edges;

    #[test]
    fn recognizes_paths_and_orders_them() {
        let g = path(7);
        match recognize(&g) {
            Structure::Path { positions } => {
                // Ids are positions for gen::misc::path; the walk must be
                // monotone along the path (either direction).
                let mut order: Vec<u32> = (0..7).collect();
                order.sort_by_key(|&v| positions[v as usize]);
                let fwd: Vec<u32> = (0..7).collect();
                let bwd: Vec<u32> = (0..7).rev().collect();
                assert!(order == fwd || order == bwd, "bad walk {order:?}");
            }
            s => panic!("path classified as {}", s.name()),
        }
    }

    #[test]
    fn recognizes_path_unions_and_isolated_vertices() {
        // Two disjoint segments plus an isolated vertex.
        let g = graph_from_edges(7, &[(0, 1), (1, 2), (4, 5), (5, 6)]);
        match recognize(&g) {
            Structure::Path { positions } => {
                // Consecutive positions inside each segment.
                assert_eq!((positions[0] - positions[1]).abs(), 1);
                assert_eq!((positions[4] - positions[5]).abs(), 1);
            }
            s => panic!("union of paths classified as {}", s.name()),
        }
    }

    #[test]
    fn recognizes_forests() {
        for g in [
            complete_binary_tree(5),
            random_tree(60, 4, 3),
            caterpillar(10, 2),
            star(5),
        ] {
            assert_eq!(recognize(&g).name(), "forest");
        }
    }

    #[test]
    fn recognizes_lattices_in_all_dimensions() {
        for dims in [
            vec![5usize, 4],
            vec![2, 2],
            vec![3, 3, 3],
            vec![2, 3, 4],
            vec![2, 2, 2, 2],
        ] {
            let grid = GridGraph::lattice(&dims);
            match recognize(&grid.graph) {
                Structure::Grid(found) => {
                    assert_eq!(found.graph.num_edges(), grid.graph.num_edges());
                    // The reconstructed embedding is a valid grid embedding
                    // of the same graph under the *same* vertex ids.
                    for &(u, v) in grid.graph.edge_list() {
                        assert_eq!(l1(found.coord(u), found.coord(v)), 1, "{dims:?}");
                    }
                }
                s => panic!("lattice {dims:?} classified as {}", s.name()),
            }
        }
    }

    #[test]
    fn cycle4_is_the_2x2_lattice() {
        assert_eq!(recognize(&cycle(4)).name(), "grid");
    }

    #[test]
    fn arbitrary_graphs_fall_through() {
        for (label, g) in [
            ("cycle5", cycle(5)),
            ("k5", complete(5)),
            ("ladder", ladder(6)), // a 2×6 lattice! — see below
        ] {
            let s = recognize(&g);
            if label == "ladder" {
                assert_eq!(s.name(), "grid", "ladder is a 2×n lattice");
            } else {
                assert_eq!(s.name(), "arbitrary", "{label}");
            }
        }
        // A grid with one chord is no longer a lattice.
        let grid = GridGraph::lattice(&[4, 4]);
        let mut b = crate::graph::GraphBuilder::new(16);
        for &(u, v) in grid.graph.edge_list() {
            b.add_edge(u, v);
        }
        b.add_edge(0, 15);
        assert_eq!(recognize(&b.build()).name(), "arbitrary");
    }

    #[test]
    fn percolation_subsets_are_not_misrecognized() {
        // Sound-but-incomplete: irregular subsets must either be rejected
        // or, if accepted, carry a *verified* embedding. percolation keeps
        // only a connected blob, which is almost never a full box.
        let grid = GridGraph::percolation(&[8, 8], 0.7, 5);
        // Rejection is the expected outcome; acceptance must be verified.
        if let Structure::Grid(found) = recognize(&grid.graph) {
            for &(u, v) in grid.graph.edge_list() {
                assert_eq!(l1(found.coord(u), found.coord(v)), 1);
            }
        }
    }

    #[test]
    fn single_vertex_and_empty_graph_are_paths() {
        assert_eq!(recognize(&graph_from_edges(1, &[])).name(), "path");
        assert_eq!(recognize(&graph_from_edges(0, &[])).name(), "path");
    }

    #[test]
    fn torus_hook_identifies_generator_layouts() {
        use crate::gen::lattice::torus;
        for dims in [
            vec![4usize, 5],
            vec![3, 3],
            vec![10, 10],
            vec![3, 3, 3],
            vec![6],
        ] {
            let g = torus(&dims);
            let found = try_torus_dims(&g).unwrap_or_else(|| panic!("torus {dims:?} missed"));
            // The reported extents must reproduce the graph exactly (the
            // verification the hook itself performs — re-checked here).
            assert_eq!(
                torus(&found).edge_list(),
                g.edge_list(),
                "{dims:?} → {found:?}"
            );
        }
        // A cycle is the 1-dimensional torus.
        assert_eq!(try_torus_dims(&cycle(7)), Some(vec![7]));
    }

    #[test]
    fn torus_hook_refuses_non_tori() {
        use crate::gen::lattice::torus;
        // Grids are not tori (missing wrap edges), stars are irregular,
        // complete graphs are regular but wrong.
        assert_eq!(try_torus_dims(&GridGraph::lattice(&[4, 4]).graph), None);
        assert_eq!(try_torus_dims(&star(6)), None);
        assert_eq!(try_torus_dims(&complete(6)), None);
        // A torus with one extra chord is refused (edge lists differ).
        let t = torus(&[4, 4]);
        let mut b = crate::graph::GraphBuilder::new(16);
        for &(u, v) in t.edge_list() {
            b.add_edge(u, v);
        }
        b.add_edge(0, 10);
        assert_eq!(try_torus_dims(&b.build()), None);
        // A relabeled torus falls through — sound, not complete.
        let mut b = crate::graph::GraphBuilder::new(9);
        let relabel = |v: u32| (v + 4) % 9;
        for &(u, v) in torus(&[3, 3]).edge_list() {
            b.add_edge(relabel(u), relabel(v));
        }
        assert_eq!(try_torus_dims(&b.build()), None);
    }
}
