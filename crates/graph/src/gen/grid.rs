//! `d`-dimensional grid graphs.
//!
//! A *grid graph* in `d`-dimensional space (Section 6) is a graph
//! `G = (V, E)` with `V ⊆ Z^d` and `‖x − y‖₁ = 1` for every edge
//! `{x, y} ∈ E`. The class is closed under taking subgraphs, which is what
//! makes the splittability bound of Theorem 19 subgraph-monotone.
//!
//! [`GridGraph`] couples a [`Graph`] with the integer coordinates of its
//! vertices; the GridSplit algorithm (in `mmb-splitters`) needs them for
//! the coarsening maps `ϕ_α^{(ℓ)}`.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::graph::{Graph, GraphBuilder, VertexId};

/// A grid graph: a [`Graph`] together with a `d`-dimensional integer
/// coordinate per vertex.
#[derive(Clone, Debug)]
pub struct GridGraph {
    /// The underlying graph.
    pub graph: Graph,
    /// Spatial dimension `d ≥ 1`.
    pub dim: usize,
    /// Flattened coordinates, `dim` entries per vertex.
    coords: Vec<i64>,
}

impl GridGraph {
    /// Coordinates of vertex `v` as a slice of length `dim`.
    #[inline]
    pub fn coord(&self, v: VertexId) -> &[i64] {
        let d = self.dim;
        &self.coords[v as usize * d..v as usize * d + d]
    }

    /// All coordinates, flattened (`dim` entries per vertex).
    pub fn coords(&self) -> &[i64] {
        &self.coords
    }

    /// Couple an existing [`Graph`] with explicit integer coordinates,
    /// keeping the graph's vertex ids (unlike [`GridGraph::from_points`],
    /// which re-indexes). Used by structure detection
    /// ([`crate::recognize`]) to hand a reconstructed embedding to
    /// GridSplit without relabeling the instance.
    ///
    /// # Panics
    /// Panics if `coords` does not hold `dim` entries per vertex or some
    /// edge joins points whose `L1` distance is not exactly 1 (the grid
    /// graph defining property, Section 6).
    pub fn from_graph_coords(graph: Graph, dim: usize, coords: Vec<i64>) -> Self {
        assert!(dim >= 1, "dimension must be at least 1");
        assert_eq!(
            coords.len(),
            graph.num_vertices() * dim,
            "coordinate length mismatch"
        );
        let grid = GridGraph { graph, dim, coords };
        for &(u, v) in grid.graph.edge_list() {
            let dist: i64 = grid
                .coord(u)
                .iter()
                .zip(grid.coord(v))
                .map(|(a, b)| (a - b).abs())
                .sum();
            assert_eq!(dist, 1, "edge {u}-{v} does not join L1-adjacent points");
        }
        grid
    }

    /// Build a grid graph from a set of integer points: vertices are the
    /// (deduplicated) points, edges join points at `L1` distance exactly 1.
    ///
    /// `O(n·d)` expected time via hashing.
    pub fn from_points(dim: usize, points: Vec<Vec<i64>>) -> Self {
        assert!(dim >= 1, "dimension must be at least 1");
        for p in &points {
            assert_eq!(p.len(), dim, "point dimension mismatch");
        }
        let mut index: HashMap<&[i64], u32> = HashMap::with_capacity(points.len());
        let mut unique: Vec<&Vec<i64>> = Vec::with_capacity(points.len());
        for p in &points {
            index.entry(p.as_slice()).or_insert_with(|| {
                unique.push(p);
                (unique.len() - 1) as u32
            });
        }
        let n = unique.len();
        let mut builder = GraphBuilder::new(n);
        let mut probe = vec![0i64; dim];
        for (v, p) in unique.iter().enumerate() {
            probe.copy_from_slice(p);
            for axis in 0..dim {
                // Only look in the +1 direction; the −1 neighbor adds the
                // edge from its own scan.
                probe[axis] += 1;
                if let Some(&u) = index.get(probe.as_slice()) {
                    builder.add_edge(v as u32, u);
                }
                probe[axis] -= 1;
            }
        }
        let coords = unique.iter().flat_map(|p| p.iter().copied()).collect();
        GridGraph {
            graph: builder.build(),
            dim,
            coords,
        }
    }

    /// The full lattice `[0, dims[0]) × … × [0, dims[d−1])`.
    pub fn lattice(dims: &[usize]) -> Self {
        assert!(!dims.is_empty(), "need at least one dimension");
        assert!(dims.iter().all(|&d| d >= 1), "each extent must be >= 1");
        let n: usize = dims.iter().product();
        let d = dims.len();
        let mut points = Vec::with_capacity(n);
        let mut cur = vec![0i64; d];
        loop {
            points.push(cur.clone());
            // Odometer increment.
            let mut axis = 0;
            loop {
                if axis == d {
                    return GridGraph::from_points(d, points);
                }
                cur[axis] += 1;
                if (cur[axis] as usize) < dims[axis] {
                    break;
                }
                cur[axis] = 0;
                axis += 1;
            }
        }
    }

    /// A path with `n` vertices (the 1-dimensional lattice).
    pub fn path(n: usize) -> Self {
        GridGraph::lattice(&[n])
    }

    /// Site-percolation subset of a lattice: keep each lattice point
    /// independently with probability `keep`, then retain only the largest
    /// connected component (so tests get one usable piece).
    pub fn percolation(dims: &[usize], keep: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&keep), "keep probability out of range");
        let full = GridGraph::lattice(dims);
        let mut rng = StdRng::seed_from_u64(seed);
        let kept: Vec<VertexId> = full
            .graph
            .vertices()
            .filter(|_| rng.random::<f64>() < keep)
            .collect();
        if kept.is_empty() {
            return GridGraph::from_points(dims.len(), vec![vec![0; dims.len()]]);
        }
        // Build the subset grid, then keep its largest component.
        let pts: Vec<Vec<i64>> = kept.iter().map(|&v| full.coord(v).to_vec()).collect();
        let sub = GridGraph::from_points(dims.len(), pts);
        let (comp, count) = sub.graph.components();
        if count <= 1 {
            return sub;
        }
        let mut sizes = vec![0usize; count];
        for &c in &comp {
            sizes[c as usize] += 1;
        }
        let best = (0..count)
            .max_by_key(|&i| sizes[i])
            .expect("count >= 2 components in this branch") as u32;
        let pts: Vec<Vec<i64>> = sub
            .graph
            .vertices()
            .filter(|&v| comp[v as usize] == best)
            .map(|v| sub.coord(v).to_vec())
            .collect();
        GridGraph::from_points(dims.len(), pts)
    }

    /// `copies` disjoint translated copies of `base`, separated by a gap of
    /// 2 along axis 0 so cells never straddle copies. This is the `G̃`
    /// construction of Lemma 40 at the grid level; costs/weights are
    /// replicated by [`crate::union::replicate_measure`].
    pub fn disjoint_copies(base: &GridGraph, copies: usize) -> Self {
        assert!(copies >= 1, "need at least one copy");
        let span = base
            .graph
            .vertices()
            .map(|v| base.coord(v)[0])
            .fold((i64::MAX, i64::MIN), |(lo, hi), x| (lo.min(x), hi.max(x)));
        let width = if base.graph.num_vertices() == 0 {
            0
        } else {
            span.1 - span.0 + 1
        };
        let stride = width + 2;
        let mut points = Vec::with_capacity(base.graph.num_vertices() * copies);
        for i in 0..copies {
            let shift = stride * i as i64;
            for v in base.graph.vertices() {
                let mut p = base.coord(v).to_vec();
                p[0] += shift;
                points.push(p);
            }
        }
        GridGraph::from_points(base.dim, points)
    }

    /// Random connected "blob": a lattice-random-walk-grown region of `n`
    /// points in `d` dimensions (useful as an irregular mesh stand-in).
    pub fn random_blob(dim: usize, n: usize, seed: u64) -> Self {
        assert!(dim >= 1 && n >= 1);
        let mut rng = StdRng::seed_from_u64(seed);
        // Membership is hashed, but the returned point list is the
        // insertion-order `points` Vec: vertex ids depend only on the seed,
        // never on `HashMap` iteration order (which varies run-to-run).
        let mut seen: HashMap<Vec<i64>, ()> = HashMap::new();
        let mut points: Vec<Vec<i64>> = vec![vec![0; dim]];
        let mut frontier: Vec<Vec<i64>> = vec![vec![0; dim]];
        seen.insert(vec![0; dim], ());
        while points.len() < n && !frontier.is_empty() {
            let idx = rng.random_range(0..frontier.len());
            let base = frontier[idx].clone();
            let axis = rng.random_range(0..dim);
            let dir = if rng.random::<bool>() { 1 } else { -1 };
            let mut p = base;
            p[axis] += dir;
            if seen.insert(p.clone(), ()).is_none() {
                points.push(p.clone());
                frontier.push(p);
            }
        }
        GridGraph::from_points(dim, points)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lattice_counts() {
        let g = GridGraph::lattice(&[3, 4]);
        assert_eq!(g.graph.num_vertices(), 12);
        // Edges: 2*4 (horizontal per row… careful) = (3-1)*4 + 3*(4-1) = 8 + 9 = 17.
        assert_eq!(g.graph.num_edges(), 17);
        assert!(g.graph.is_connected());
        assert_eq!(g.dim, 2);
    }

    #[test]
    fn lattice_3d_counts() {
        let g = GridGraph::lattice(&[2, 2, 2]);
        assert_eq!(g.graph.num_vertices(), 8);
        assert_eq!(g.graph.num_edges(), 12); // cube
        assert_eq!(g.graph.max_degree(), 3);
    }

    #[test]
    fn path_is_one_dimensional_lattice() {
        let g = GridGraph::path(5);
        assert_eq!(g.graph.num_vertices(), 5);
        assert_eq!(g.graph.num_edges(), 4);
        assert_eq!(g.graph.max_degree(), 2);
    }

    #[test]
    fn from_points_edges_need_l1_distance_one() {
        let pts = vec![vec![0, 0], vec![1, 0], vec![1, 1], vec![3, 3]];
        let g = GridGraph::from_points(2, pts);
        assert_eq!(g.graph.num_vertices(), 4);
        assert_eq!(g.graph.num_edges(), 2); // (0,0)-(1,0), (1,0)-(1,1)
    }

    #[test]
    fn from_points_dedupes() {
        let pts = vec![vec![0, 0], vec![0, 0], vec![1, 0]];
        let g = GridGraph::from_points(2, pts);
        assert_eq!(g.graph.num_vertices(), 2);
        assert_eq!(g.graph.num_edges(), 1);
    }

    #[test]
    fn disjoint_copies_do_not_touch() {
        let base = GridGraph::lattice(&[3, 3]);
        let three = GridGraph::disjoint_copies(&base, 3);
        assert_eq!(three.graph.num_vertices(), 27);
        assert_eq!(three.graph.num_edges(), 3 * base.graph.num_edges());
        assert_eq!(three.graph.components().1, 3);
    }

    #[test]
    fn percolation_is_connected_and_deterministic() {
        let a = GridGraph::percolation(&[10, 10], 0.7, 42);
        let b = GridGraph::percolation(&[10, 10], 0.7, 42);
        assert_eq!(a.graph.num_vertices(), b.graph.num_vertices());
        assert!(a.graph.is_connected());
        assert!(a.graph.num_vertices() <= 100);
    }

    #[test]
    fn random_blob_grows_connected() {
        let g = GridGraph::random_blob(3, 200, 7);
        assert_eq!(g.graph.num_vertices(), 200);
        assert!(g.graph.is_connected());
        assert!(g.graph.max_degree() <= 6);
    }

    #[test]
    fn random_blob_is_seed_deterministic() {
        // Regression: vertex ids used to come from `HashMap::into_keys`,
        // whose order differs between two maps even in one process — so the
        // same seed produced different numberings. Ids must now be a pure
        // function of the seed: identical coords AND identical edge lists.
        let a = GridGraph::random_blob(2, 150, 42);
        let b = GridGraph::random_blob(2, 150, 42);
        assert_eq!(a.graph.num_vertices(), b.graph.num_vertices());
        for v in a.graph.vertices() {
            assert_eq!(a.coord(v), b.coord(v), "coords diverge at v={v}");
            assert_eq!(
                a.graph.neighbors(v),
                b.graph.neighbors(v),
                "adjacency diverges at v={v}"
            );
        }
        // And a different seed actually produces a different blob.
        let c = GridGraph::random_blob(2, 150, 43);
        let same = a.graph.vertices().all(|v| a.coord(v) == c.coord(v));
        assert!(!same, "seeds 42 and 43 produced identical blobs");
    }
}
