//! Hypercubes and torus lattices.
//!
//! Two deterministic lattice-like families that stress structure
//! detection from opposite sides:
//!
//! * the `d`-dimensional **hypercube** `Q_d` *is* the full `[0,2)^d`
//!   lattice, so [`crate::recognize`] must accept it (and reconstruct a
//!   valid embedding);
//! * a **torus** with any extent ≥ 3 has wrap-around cycles no axis-aligned
//!   box embedding can realize, so recognition must *refuse* it — a torus
//!   misclassified as a grid would hand GridSplit a broken geometry.

use crate::graph::{Graph, GraphBuilder};

/// The `d`-dimensional hypercube `Q_d`: `2^d` vertices indexed by their
/// binary code, an edge between every pair of codes at Hamming distance 1.
/// (`Q_d` is exactly the `[0,2)^d` grid lattice.)
///
/// # Panics
/// Panics unless `1 ≤ d ≤ 20`.
pub fn hypercube(d: usize) -> Graph {
    assert!((1..=20).contains(&d), "hypercube dimension out of range");
    let n = 1usize << d;
    let mut b = GraphBuilder::new(n);
    for v in 0..n {
        for axis in 0..d {
            let u = v ^ (1 << axis);
            if v < u {
                b.add_edge(v as u32, u as u32);
            }
        }
    }
    b.build()
}

/// Torus lattice `Z_{dims[0]} × … × Z_{dims[d−1]}`: the grid with
/// wrap-around edges along every axis. Along an axis of extent 2 the
/// wrap-around edge coincides with the lattice edge (a single edge — the
/// graph model has no parallel edges), and an axis of extent 1
/// contributes no edges; so `torus(&[2, …, 2])` *is* the hypercube and
/// genuinely embeds as a grid, while any extent ≥ 3 introduces
/// non-embeddable wrap cycles.
///
/// Vertex ids are odometer order (axis 0 fastest), matching
/// [`crate::gen::grid::GridGraph::lattice`].
///
/// # Panics
/// Panics if `dims` is empty or any extent is 0.
pub fn torus(dims: &[usize]) -> Graph {
    assert!(!dims.is_empty(), "need at least one dimension");
    assert!(dims.iter().all(|&e| e >= 1), "each extent must be >= 1");
    let n: usize = dims.iter().product();
    let d = dims.len();
    // Strides of the odometer layout: vertex id = Σ coord[a] · stride[a].
    let mut stride = vec![1usize; d];
    for a in 1..d {
        stride[a] = stride[a - 1] * dims[a - 1];
    }
    let mut b = GraphBuilder::new(n);
    let mut coord = vec![0usize; d];
    for v in 0..n {
        for a in 0..d {
            if dims[a] < 2 {
                continue;
            }
            let next = if coord[a] + 1 == dims[a] {
                v - coord[a] * stride[a] // wrap back to coordinate 0
            } else {
                v + stride[a]
            };
            if v != next {
                b.add_edge(v as u32, next as u32);
            }
        }
        // Odometer increment.
        for c in coord.iter_mut().zip(dims) {
            *c.0 += 1;
            if *c.0 < *c.1 {
                break;
            }
            *c.0 = 0;
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hypercube_counts() {
        for d in 1..=6usize {
            let g = hypercube(d);
            assert_eq!(g.num_vertices(), 1 << d);
            // |E(Q_d)| = d · 2^{d−1}; Q_d is d-regular and connected.
            assert_eq!(g.num_edges(), d * (1 << (d - 1)));
            assert!(g.vertices().all(|v| g.degree(v) == d));
            assert!(g.is_connected());
        }
    }

    #[test]
    fn torus_counts_and_regularity() {
        // All extents ≥ 3: the torus is 2d-regular with d·n edges.
        let g = torus(&[4, 5]);
        assert_eq!(g.num_vertices(), 20);
        assert_eq!(g.num_edges(), 40);
        for v in g.vertices() {
            assert_eq!(g.degree(v), 4);
        }
        let g3 = torus(&[3, 3, 3]);
        assert_eq!(g3.num_edges(), 81);
        assert!(g3.is_connected());
    }

    #[test]
    fn extent_two_collapses_to_the_lattice_edge() {
        // torus([2, 2]) = the 4-cycle = the 2×2 grid.
        let g = torus(&[2, 2]);
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 4);
        // torus([2]^d) is the hypercube.
        let t = torus(&[2, 2, 2]);
        let q = hypercube(3);
        assert_eq!(t.edge_list(), q.edge_list());
    }

    #[test]
    fn degenerate_extents() {
        assert_eq!(torus(&[1]).num_edges(), 0);
        assert_eq!(torus(&[1, 5]).num_edges(), 5); // a 5-cycle
        assert_eq!(torus(&[5]).num_edges(), 5);
        assert_eq!(torus(&[2]).num_edges(), 1);
    }

    #[test]
    fn torus_wraps() {
        // In a 4×4 torus, vertex 0 (coords (0,0)) neighbors 3 (coords
        // (3,0), the axis-0 wrap) and 12 (coords (0,3), the axis-1 wrap).
        let g = torus(&[4, 4]);
        assert!(g.has_edge(0, 3));
        assert!(g.has_edge(0, 12));
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(0, 4));
        assert_eq!(g.degree(0), 4);
    }
}
