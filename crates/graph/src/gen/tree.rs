//! Bounded-degree tree generators.
//!
//! Trees are the classic family where *vertex* separators are single
//! vertices (centroids) but balanced *edge* cuts can require `Θ(log n)`
//! edges (complete binary trees) — a useful contrast family for the
//! splittability experiments.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::graph::{Graph, GraphBuilder};

/// Complete binary tree with `levels ≥ 1` levels (`2^levels − 1` vertices).
/// Vertex 0 is the root; children of `v` are `2v+1`, `2v+2`.
pub fn complete_binary_tree(levels: u32) -> Graph {
    assert!(levels >= 1, "need at least one level");
    let n = (1usize << levels) - 1;
    let mut b = GraphBuilder::new(n);
    for v in 0..n {
        for c in [2 * v + 1, 2 * v + 2] {
            if c < n {
                b.add_edge(v as u32, c as u32);
            }
        }
    }
    b.build()
}

/// Random attachment tree with maximum degree `max_degree ≥ 2`: vertex `i`
/// attaches to a uniformly random earlier vertex that still has spare
/// degree. Deterministic given `seed`.
pub fn random_tree(n: usize, max_degree: usize, seed: u64) -> Graph {
    assert!(n >= 1, "need at least one vertex");
    assert!(max_degree >= 2, "max degree must be at least 2");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    let mut deg = vec![0usize; n];
    // Candidates with spare capacity; swap-remove keeps it O(1) amortized.
    let mut open: Vec<u32> = vec![0];
    for v in 1..n as u32 {
        let idx = rng.random_range(0..open.len());
        let parent = open[idx];
        b.add_edge(parent, v);
        deg[parent as usize] += 1;
        deg[v as usize] += 1;
        if deg[parent as usize] >= max_degree {
            open.swap_remove(idx);
        }
        if deg[v as usize] < max_degree {
            open.push(v);
        }
        assert!(
            !open.is_empty() || v as usize == n - 1,
            "ran out of attachment points"
        );
    }
    b.build()
}

/// Caterpillar: a spine path of `spine` vertices, each spine vertex carrying
/// `legs` pendant leaves. Total `spine·(1+legs)` vertices; maximum degree
/// `legs + 2`.
pub fn caterpillar(spine: usize, legs: usize) -> Graph {
    assert!(spine >= 1);
    let n = spine * (1 + legs);
    let mut b = GraphBuilder::new(n);
    for s in 0..spine {
        if s + 1 < spine {
            b.add_edge(s as u32, (s + 1) as u32);
        }
        for l in 0..legs {
            let leaf = spine + s * legs + l;
            b.add_edge(s as u32, leaf as u32);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cbt_shape() {
        let g = complete_binary_tree(4);
        assert_eq!(g.num_vertices(), 15);
        assert_eq!(g.num_edges(), 14);
        assert!(g.is_connected());
        assert_eq!(g.max_degree(), 3);
        assert_eq!(g.degree(0), 2); // root
    }

    #[test]
    fn cbt_single_level() {
        let g = complete_binary_tree(1);
        assert_eq!(g.num_vertices(), 1);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn random_tree_is_tree_with_degree_cap() {
        for seed in 0..5 {
            let g = random_tree(200, 4, seed);
            assert_eq!(g.num_edges(), 199);
            assert!(g.is_connected());
            assert!(g.max_degree() <= 4);
        }
    }

    #[test]
    fn random_tree_deterministic() {
        let a = random_tree(50, 3, 9);
        let b = random_tree(50, 3, 9);
        assert_eq!(a.edge_list(), b.edge_list());
    }

    #[test]
    fn caterpillar_shape() {
        let g = caterpillar(5, 3);
        assert_eq!(g.num_vertices(), 20);
        assert_eq!(g.num_edges(), 19);
        assert!(g.is_connected());
        assert_eq!(g.max_degree(), 5); // interior spine: 2 spine + 3 legs
    }
}
