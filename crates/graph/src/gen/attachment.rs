//! Preferential-attachment (Barabási–Albert style) graphs.
//!
//! The classic power-law family: each arriving vertex attaches to
//! `attach` distinct earlier vertices chosen proportionally to their
//! current degree (plus one, so isolated seeds stay reachable). The
//! result has a heavy-tailed degree distribution — hubs whose
//! cost-weighted degree `Δ_c` dwarfs `‖c‖_∞` — which makes it the
//! corpus's *deliberately ill-behaved* family: Theorem 5's well-behaved
//! preconditions fail here, so the honest bound is the `p = 1` form.
//!
//! With `attach = 1` every new vertex adds exactly one edge, so the graph
//! is a tree (a random recursive tree with preferential attachment) and
//! structure detection classifies it as a forest — a useful corner for
//! the auto-splitter tests.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::graph::{Graph, GraphBuilder};

/// Preferential-attachment graph on `n ≥ 1` vertices: vertex `i` attaches
/// to `min(attach, i)` *distinct* earlier vertices sampled with
/// probability proportional to `degree + 1`. Deterministic given `seed`.
///
/// Edge count: `Σ_{i<n} min(attach, i)`, i.e. `attach·n − attach·(attach+1)/2`
/// for `n > attach`. Always connected.
///
/// # Panics
/// Panics if `n == 0` or `attach == 0`.
pub fn preferential_attachment(n: usize, attach: usize, seed: u64) -> Graph {
    assert!(n >= 1, "need at least one vertex");
    assert!(attach >= 1, "each vertex must attach at least one edge");
    let mut rng = StdRng::seed_from_u64(seed ^ 0x8CB92BA72F3D8DD7);
    let mut b = GraphBuilder::new(n);
    // `pool` holds one entry per unit of (degree + 1): sampling uniformly
    // from it is sampling vertices ∝ degree + 1. Vertex birth contributes
    // the +1 entry; every accepted edge contributes one entry per endpoint.
    let mut pool: Vec<u32> = vec![0];
    let mut targets: Vec<u32> = Vec::with_capacity(attach);
    for v in 1..n as u32 {
        targets.clear();
        let want = attach.min(v as usize);
        // Rejection-sample distinct targets; the pool always contains at
        // least `v` distinct vertices, so `want ≤ v` targets always exist
        // and the loop terminates (deterministically, given the seed).
        while targets.len() < want {
            let t = pool[rng.random_range(0..pool.len())];
            if !targets.contains(&t) {
                targets.push(t);
            }
        }
        for &t in &targets {
            b.add_edge(v, t);
            pool.push(t);
            pool.push(v);
        }
        pool.push(v);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_count_and_connectivity() {
        for (n, attach) in [(30usize, 1usize), (50, 2), (40, 3)] {
            let g = preferential_attachment(n, attach, 9);
            let expect: usize = (0..n).map(|i| attach.min(i)).sum();
            assert_eq!(g.num_edges(), expect, "n={n} attach={attach}");
            assert!(g.is_connected());
        }
    }

    #[test]
    fn attach_one_is_a_tree() {
        let g = preferential_attachment(64, 1, 4);
        assert_eq!(g.num_edges(), 63);
        assert!(g.is_connected());
    }

    #[test]
    fn deterministic_under_seed() {
        let a = preferential_attachment(80, 2, 13);
        let b = preferential_attachment(80, 2, 13);
        assert_eq!(a.edge_list(), b.edge_list());
        let c = preferential_attachment(80, 2, 14);
        assert_ne!(a.edge_list(), c.edge_list());
    }

    #[test]
    fn grows_hubs() {
        // Preferential attachment must concentrate degree: the maximum
        // degree should clearly exceed the average (2m/n ≈ 2·attach).
        let g = preferential_attachment(300, 2, 7);
        let avg = 2.0 * g.num_edges() as f64 / g.num_vertices() as f64;
        assert!(
            g.max_degree() as f64 >= 2.5 * avg,
            "no hub: max degree {} vs avg {avg}",
            g.max_degree()
        );
    }
}
