//! Planted-partition (stochastic block model) graphs.
//!
//! `n` vertices in `groups` equal-size communities; each within-community
//! pair is an edge with probability `p_in`, each cross-community pair with
//! probability `p_out < p_in`. The planted communities are returned
//! alongside the graph, so experiments can compare a partitioner's cut
//! against the ground-truth community cut — the corpus family with a
//! *known-good* `k`-coloring.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::coloring::Coloring;
use crate::graph::{Graph, GraphBuilder};

/// A planted-partition graph with its ground-truth community structure.
#[derive(Clone, Debug)]
pub struct PlantedPartition {
    /// The sampled graph.
    pub graph: Graph,
    /// Ground-truth community of each vertex (`0..groups`).
    pub communities: Vec<u32>,
    /// Number of planted communities.
    pub groups: usize,
}

impl PlantedPartition {
    /// The planted communities as a total `groups`-coloring — the
    /// known-good partition the generator hid in the graph.
    pub fn ground_truth(&self) -> Coloring {
        Coloring::from_vec(self.groups, self.communities.clone())
    }

    /// Number of edges crossing between different planted communities.
    pub fn cross_edges(&self) -> usize {
        self.graph
            .edge_list()
            .iter()
            .filter(|&&(u, v)| self.communities[u as usize] != self.communities[v as usize])
            .count()
    }
}

/// Sample a planted-partition graph: communities are contiguous id blocks
/// (vertex `v` belongs to community `v · groups / n`, sizes differing by
/// at most one). Deterministic given `seed`; `O(n²)` sampling.
///
/// # Panics
/// Panics unless `1 ≤ groups ≤ n` and both probabilities lie in `[0, 1]`.
pub fn planted_partition(
    n: usize,
    groups: usize,
    p_in: f64,
    p_out: f64,
    seed: u64,
) -> PlantedPartition {
    assert!(groups >= 1 && groups <= n, "need 1 ≤ groups ≤ n");
    assert!((0.0..=1.0).contains(&p_in), "p_in out of range");
    assert!((0.0..=1.0).contains(&p_out), "p_out out of range");
    let mut rng = StdRng::seed_from_u64(seed ^ 0xE7037ED1A0B428DB);
    let communities: Vec<u32> = (0..n).map(|v| (v * groups / n) as u32).collect();
    let mut b = GraphBuilder::new(n);
    for u in 0..n {
        for v in u + 1..n {
            let p = if communities[u] == communities[v] {
                p_in
            } else {
                p_out
            };
            if rng.random::<f64>() < p {
                b.add_edge(u as u32, v as u32);
            }
        }
    }
    PlantedPartition {
        graph: b.build(),
        communities,
        groups,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn community_sizes_are_balanced() {
        let pp = planted_partition(50, 4, 0.5, 0.05, 1);
        let mut sizes = vec![0usize; 4];
        for &c in &pp.communities {
            sizes[c as usize] += 1;
        }
        assert!(sizes.iter().all(|&s| s == 12 || s == 13), "{sizes:?}");
        let gt = pp.ground_truth();
        assert!(gt.is_total());
        assert_eq!(gt.k(), 4);
    }

    #[test]
    fn deterministic_under_seed() {
        let a = planted_partition(60, 3, 0.4, 0.05, 7);
        let b = planted_partition(60, 3, 0.4, 0.05, 7);
        assert_eq!(a.graph.edge_list(), b.graph.edge_list());
        let c = planted_partition(60, 3, 0.4, 0.05, 8);
        assert_ne!(a.graph.edge_list(), c.graph.edge_list());
    }

    #[test]
    fn planted_structure_is_visible() {
        // Within-community density must clearly exceed cross density.
        let pp = planted_partition(120, 4, 0.4, 0.02, 3);
        let cross = pp.cross_edges();
        let within = pp.graph.num_edges() - cross;
        // Expected within ≈ 0.4 · 4 · C(30,2) = 696; cross ≈ 0.02 · 4050 = 81.
        assert!(within > 4 * cross, "within {within} vs cross {cross}");
    }

    #[test]
    fn extreme_probabilities() {
        let empty = planted_partition(20, 2, 0.0, 0.0, 5);
        assert_eq!(empty.graph.num_edges(), 0);
        let full = planted_partition(12, 3, 1.0, 1.0, 5);
        assert_eq!(full.graph.num_edges(), 12 * 11 / 2);
        // p_out = 0 disconnects the communities from each other.
        let iso = planted_partition(40, 4, 1.0, 0.0, 5);
        assert_eq!(iso.graph.components().1, 4);
        assert_eq!(iso.cross_edges(), 0);
    }
}
