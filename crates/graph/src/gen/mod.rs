//! Instance generators.
//!
//! * [`grid`] — `d`-dimensional grid graphs with integer coordinates, the
//!   graph family of the paper's Section 6, plus subset/percolation
//!   variants.
//! * [`tree`] — bounded-degree trees (complete binary trees, random
//!   attachment trees, caterpillars).
//! * [`misc`] — paths, cycles, stars, cliques, ladders; small named graphs
//!   for tests.
//! * [`attachment`] — preferential-attachment (power-law) graphs: hubs,
//!   heavy-tailed degrees, deliberately ill-behaved.
//! * [`geometric`] — random geometric graphs: spatially local meshes
//!   without lattice structure.
//! * [`smallworld`] — Watts–Strogatz ring lattices with rewired
//!   long-range shortcuts.
//! * [`lattice`] — hypercubes (`Q_d` *is* a `[0,2)^d` grid) and torus
//!   lattices (wrap-around cycles that must *not* be mistaken for grids).
//! * [`community`] — planted-partition / stochastic-block-model graphs
//!   with ground-truth communities.
//!
//! All randomized generators take an explicit `u64` seed and are
//! deterministic given the seed.

pub mod attachment;
pub mod community;
pub mod geometric;
pub mod grid;
pub mod lattice;
pub mod misc;
pub mod smallworld;
pub mod tree;
