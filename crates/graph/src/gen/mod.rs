//! Instance generators.
//!
//! * [`grid`] — `d`-dimensional grid graphs with integer coordinates, the
//!   graph family of the paper's Section 6, plus subset/percolation
//!   variants.
//! * [`tree`] — bounded-degree trees (complete binary trees, random
//!   attachment trees, caterpillars).
//! * [`misc`] — paths, cycles, stars, cliques, ladders; small named graphs
//!   for tests.
//!
//! All randomized generators take an explicit `u64` seed and are
//! deterministic given the seed.

pub mod grid;
pub mod misc;
pub mod tree;
