//! Random geometric graphs.
//!
//! `n` points uniform in the unit square, an edge whenever the Euclidean
//! distance is at most `radius`. The family is the "irregular mesh"
//! stand-in of the corpus: spatially local like a grid (so separator-style
//! splitters do well) but without any lattice structure for
//! [`crate::recognize`] to latch onto.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::graph::{Graph, GraphBuilder};

/// A random geometric graph together with the points that induced it
/// (kept so tests can verify the edge ⟺ distance-threshold invariant).
#[derive(Clone, Debug)]
pub struct GeometricGraph {
    /// The graph; vertex `v` sits at `points[v]`.
    pub graph: Graph,
    /// Sampled positions in `[0, 1)²`, indexed by vertex id.
    pub points: Vec<[f64; 2]>,
    /// The connection radius.
    pub radius: f64,
}

/// Sample a random geometric graph: `n` iid uniform points in `[0, 1)²`,
/// edges between pairs at Euclidean distance ≤ `radius`. Deterministic
/// given `seed`; `O(n²)` construction (corpus sizes are small).
///
/// # Panics
/// Panics if `n == 0` or `radius` is not positive and finite.
pub fn random_geometric(n: usize, radius: f64, seed: u64) -> GeometricGraph {
    assert!(n >= 1, "need at least one point");
    assert!(
        radius > 0.0 && radius.is_finite(),
        "radius must be positive"
    );
    let mut rng = StdRng::seed_from_u64(seed ^ 0x2545F4914F6CDD1D);
    let points: Vec<[f64; 2]> = (0..n)
        .map(|_| [rng.random::<f64>(), rng.random::<f64>()])
        .collect();
    let r2 = radius * radius;
    let mut b = GraphBuilder::new(n);
    for u in 0..n {
        for v in u + 1..n {
            let dx = points[u][0] - points[v][0];
            let dy = points[u][1] - points[v][1];
            if dx * dx + dy * dy <= r2 {
                b.add_edge(u as u32, v as u32);
            }
        }
    }
    GeometricGraph {
        graph: b.build(),
        points,
        radius,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edges_iff_within_radius() {
        let gg = random_geometric(60, 0.25, 3);
        let r2 = gg.radius * gg.radius;
        for u in 0..60u32 {
            for v in u + 1..60 {
                let dx = gg.points[u as usize][0] - gg.points[v as usize][0];
                let dy = gg.points[u as usize][1] - gg.points[v as usize][1];
                let within = dx * dx + dy * dy <= r2;
                assert_eq!(gg.graph.has_edge(u, v), within, "pair {u}-{v}");
            }
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let a = random_geometric(100, 0.2, 21);
        let b = random_geometric(100, 0.2, 21);
        assert_eq!(a.graph.edge_list(), b.graph.edge_list());
        assert_eq!(a.points, b.points);
        let c = random_geometric(100, 0.2, 22);
        assert_ne!(a.points, c.points);
    }

    #[test]
    fn radius_monotone_in_edge_count() {
        let small = random_geometric(80, 0.1, 5);
        let large = random_geometric(80, 0.3, 5);
        // Same points (same seed), larger radius ⇒ superset of edges.
        assert_eq!(small.points, large.points);
        assert!(large.graph.num_edges() >= small.graph.num_edges());
        for &(u, v) in small.graph.edge_list() {
            assert!(large.graph.has_edge(u, v));
        }
    }
}
