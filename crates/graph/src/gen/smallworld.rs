//! Watts–Strogatz small-world graphs.
//!
//! A ring lattice (each vertex joined to its `k_half` nearest neighbors on
//! each side) whose edges are independently rewired with probability
//! `beta` to uniformly random endpoints. For small `beta` the graph keeps
//! the ring's locality (cheap prefix-style cuts) while sprinkling a few
//! long-range shortcuts — the corpus family probing how much a handful of
//! non-local edges degrades boundary quality.

use std::collections::HashSet;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::graph::{Graph, GraphBuilder};

/// Watts–Strogatz graph on `n` vertices: ring lattice of half-degree
/// `k_half` with each edge rewired with probability `beta`. A rewiring
/// attempt that would create a self-loop or a duplicate edge keeps the
/// original edge instead, so the edge count is always exactly
/// `n · k_half`. Deterministic given `seed`; `beta = 0` yields the exact
/// ring lattice.
///
/// # Panics
/// Panics unless `n > 2·k_half ≥ 2` and `0 ≤ beta ≤ 1`.
pub fn watts_strogatz(n: usize, k_half: usize, beta: f64, seed: u64) -> Graph {
    assert!(k_half >= 1, "half-degree must be at least 1");
    assert!(n > 2 * k_half, "ring lattice needs n > 2·k_half");
    assert!(
        (0.0..=1.0).contains(&beta),
        "rewiring probability out of range"
    );
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9E6C63D0876A9A47);
    let mut edges: HashSet<(u32, u32)> = HashSet::with_capacity(n * k_half);
    let key = |a: u32, b: u32| if a < b { (a, b) } else { (b, a) };
    // Ring lattice: each vertex to its k_half clockwise neighbors (the
    // counter-clockwise ones are added by the neighbors' own scans).
    for v in 0..n {
        for j in 1..=k_half {
            edges.insert(key(v as u32, ((v + j) % n) as u32));
        }
    }
    // Rewire in a canonical order (by source vertex, then offset) so the
    // construction is deterministic: replace (v, v+j) by (v, t) for a
    // uniform t when the coin lands and the replacement is simple.
    for v in 0..n {
        for j in 1..=k_half {
            let old = key(v as u32, ((v + j) % n) as u32);
            if rng.random::<f64>() >= beta {
                continue;
            }
            let t = rng.random_range(0..n) as u32;
            let new = key(v as u32, t);
            if t as usize == v || edges.contains(&new) || !edges.contains(&old) {
                continue; // keep the original edge
            }
            edges.remove(&old);
            edges.insert(new);
        }
    }
    let mut b = GraphBuilder::new(n);
    // Insert in sorted order for reproducibility independent of the hash
    // iteration order (the builder sorts anyway; this keeps intent clear).
    let mut sorted: Vec<(u32, u32)> = edges.into_iter().collect();
    sorted.sort_unstable();
    for (u, v) in sorted {
        b.add_edge(u, v);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_beta_is_the_ring_lattice() {
        let g = watts_strogatz(20, 2, 0.0, 1);
        assert_eq!(g.num_edges(), 40);
        assert_eq!(g.max_degree(), 4);
        for v in 0..20u32 {
            for j in 1..=2u32 {
                assert!(g.has_edge(v, (v + j) % 20));
            }
        }
    }

    #[test]
    fn edge_count_is_preserved_under_rewiring() {
        for beta in [0.05, 0.3, 1.0] {
            for seed in 0..4 {
                let g = watts_strogatz(50, 2, beta, seed);
                assert_eq!(g.num_edges(), 100, "beta={beta} seed={seed}");
            }
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let a = watts_strogatz(60, 3, 0.2, 8);
        let b = watts_strogatz(60, 3, 0.2, 8);
        assert_eq!(a.edge_list(), b.edge_list());
        let c = watts_strogatz(60, 3, 0.2, 9);
        assert_ne!(a.edge_list(), c.edge_list());
    }

    #[test]
    fn rewiring_actually_rewires() {
        let ring = watts_strogatz(100, 1, 0.0, 3);
        let rewired = watts_strogatz(100, 1, 0.5, 3);
        assert_ne!(ring.edge_list(), rewired.edge_list());
        // A decent fraction of edges must now be long-range shortcuts.
        let long = rewired
            .edge_list()
            .iter()
            .filter(|&&(u, v)| {
                let d = (v - u).min(100 - (v - u));
                d > 1
            })
            .count();
        assert!(long >= 10, "only {long} shortcuts after beta=0.5");
    }
}
