//! Small named generators used throughout tests and experiments.

use crate::graph::{Graph, GraphBuilder};

/// Path `P_n` (`n ≥ 1` vertices, `n − 1` edges).
pub fn path(n: usize) -> Graph {
    assert!(n >= 1);
    let mut b = GraphBuilder::new(n);
    for v in 0..n.saturating_sub(1) {
        b.add_edge(v as u32, (v + 1) as u32);
    }
    b.build()
}

/// Cycle `C_n` (`n ≥ 3`).
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3, "a cycle needs at least 3 vertices");
    let mut b = GraphBuilder::new(n);
    for v in 0..n {
        b.add_edge(v as u32, ((v + 1) % n) as u32);
    }
    b.build()
}

/// Star `K_{1,leaves}`: vertex 0 joined to `leaves` leaves. Unbounded degree
/// — deliberately *not* well-behaved; used in negative tests.
pub fn star(leaves: usize) -> Graph {
    let mut b = GraphBuilder::new(leaves + 1);
    for l in 1..=leaves {
        b.add_edge(0, l as u32);
    }
    b.build()
}

/// Complete graph `K_n` (small `n` only; used in exhaustive lower-bound
/// tests).
pub fn complete(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n);
    for u in 0..n {
        for v in u + 1..n {
            b.add_edge(u as u32, v as u32);
        }
    }
    b.build()
}

/// Ladder graph: two parallel paths of length `n` joined by rungs
/// (`2n` vertices, `3n − 2` edges, maximum degree 3).
pub fn ladder(n: usize) -> Graph {
    assert!(n >= 1);
    let mut b = GraphBuilder::new(2 * n);
    for v in 0..n {
        b.add_edge(v as u32, (n + v) as u32);
        if v + 1 < n {
            b.add_edge(v as u32, (v + 1) as u32);
            b.add_edge((n + v) as u32, (n + v + 1) as u32);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes() {
        assert_eq!(path(1).num_edges(), 0);
        assert_eq!(path(5).num_edges(), 4);
        assert_eq!(cycle(5).num_edges(), 5);
        assert_eq!(cycle(5).max_degree(), 2);
        assert_eq!(star(7).max_degree(), 7);
        assert_eq!(complete(5).num_edges(), 10);
        let l = ladder(4);
        assert_eq!(l.num_vertices(), 8);
        assert_eq!(l.num_edges(), 10);
        assert_eq!(l.max_degree(), 3);
        assert!(l.is_connected());
    }
}
