//! # mmb-graph
//!
//! Weighted-graph substrate for the min-max boundary decomposition library.
//!
//! This crate provides every graph-level primitive the decomposition
//! algorithms of Steurer (SPAA 2006) are built on:
//!
//! * [`Graph`] — an immutable CSR (compressed sparse row) undirected graph
//!   without self-loops or parallel edges.
//! * [`VertexSet`] — a dense bitset over a graph's vertices; all algorithms
//!   in the paper operate on induced subgraphs `G[W]`, which we represent as
//!   a `(&Graph, &VertexSet)` pair.
//! * [`measure`] — vertex measures `Φ : V → R+` and the `p`-norm machinery
//!   (`‖·‖_p`, `‖·‖_∞`, `‖·‖_avg`) the paper's notation section defines.
//! * [`Coloring`] — `k`-colorings `χ : V → [k]`, class measures `Φχ⁻¹`,
//!   boundary-cost vectors `∂χ⁻¹`, and strict-balance checking
//!   (Definition 1, eq. (1)).
//! * [`cut`] — boundary costs `∂U = c(δ(U))` within the host graph or within
//!   an induced subgraph.
//! * [`stats`] — the "well-behavedness" quantities: maximum degree `Δ`,
//!   maximum cost-weighted degree `Δ_c`, local fluctuation `φ_ℓ`, and global
//!   fluctuation `φ`.
//! * [`gen`] — instance generators: `d`-dimensional grid graphs with integer
//!   coordinates (the object of the paper's Section 6), paths, cycles,
//!   trees, caterpillars, and disjoint unions of copies (the `G̃`
//!   construction of Lemma 40).
//! * [`recognize`] — structure detection (path / forest / full lattice /
//!   arbitrary) with verified lattice-embedding reconstruction, feeding
//!   the automatic splitter choice in `mmb-core`'s `api` module.
//! * [`workspace`] — reusable epoch-stamped scratch buffers for the
//!   decomposition hot path: dense measures accumulated over touched
//!   entries only, zeroed in `O(touched)`, pooled per thread.
//!
//! The crate is dependency-light; parallel execution enters through the
//! `rayon`-shaped shim used by `mmb-core` and `mmb-bench`, with one
//! [`Workspace`] per worker thread.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod coloring;
pub mod cut;
pub mod fingerprint;
pub mod gen;
pub mod graph;
pub mod io;
pub mod measure;
pub mod recognize;
pub mod stats;
pub mod union;
pub mod vertex_set;
pub mod workspace;

pub use coloring::Coloring;
pub use fingerprint::Fingerprint;
pub use graph::{csr_capacity_check, EdgeId, Graph, GraphBuilder, GraphCapacityError, VertexId};
pub use vertex_set::VertexSet;
pub use workspace::{ScratchMeasure, ScratchMode, Workspace, WorkspaceStats};

/// Commonly used items, re-exported for glob import in downstream crates.
pub mod prelude {
    pub use crate::coloring::Coloring;
    pub use crate::cut::{boundary_cost, boundary_cost_within, cut_edges};
    pub use crate::fingerprint::Fingerprint;
    pub use crate::gen::grid::GridGraph;
    pub use crate::graph::{EdgeId, Graph, GraphBuilder, VertexId};
    pub use crate::measure::{self, Measure};
    pub use crate::recognize::{recognize, Structure};
    pub use crate::stats::InstanceStats;
    pub use crate::vertex_set::VertexSet;
    pub use crate::workspace::{ScratchMeasure, Workspace, WorkspaceStats};
}
