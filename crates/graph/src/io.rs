//! METIS-format graph I/O.
//!
//! The METIS `.graph` format is the de-facto exchange format for graph
//! partitioning benchmarks (Chaco/METIS/KaHIP all read it), so a
//! partitioning library needs it to be usable on existing instances.
//!
//! Format (1-indexed):
//!
//! ```text
//! % comment lines start with '%'
//! <n> <m> [fmt [ncon]]      fmt: 3 digits — ignored/vertex-sizes,
//!                            vertex-weights, edge-weights (e.g. "011")
//! <per-vertex line: [weights…] (neighbor [edge-weight])*>
//! ```
//!
//! Each undirected edge appears in both endpoint lines; we validate the
//! symmetry and collapse it. Partitions are written/read as one class id
//! per line (the `.part.k` convention).

use std::fmt::Write as _;

use crate::coloring::Coloring;
use crate::graph::{Graph, GraphBuilder};

/// A parsed METIS instance.
#[derive(Clone, Debug)]
pub struct MetisGraph {
    /// The graph.
    pub graph: Graph,
    /// Vertex weights (first constraint only; defaults to 1.0).
    pub weights: Vec<f64>,
    /// Edge costs (defaults to 1.0).
    pub costs: Vec<f64>,
}

/// Errors from METIS parsing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MetisError {
    /// The header line is missing or malformed.
    BadHeader(String),
    /// A data line failed to parse.
    BadLine {
        /// 1-based line number in the input.
        line: usize,
        /// Problem description.
        what: String,
    },
    /// The declared edge count does not match the body.
    EdgeCountMismatch {
        /// Edge count declared in the header.
        declared: usize,
        /// Edge count found in the body.
        found: usize,
    },
    /// An edge appears in one endpoint's adjacency line but not the
    /// other's (the format requires every undirected edge twice).
    AsymmetricAdjacency {
        /// 1-based id of the endpoint that lists the edge.
        listed_by: usize,
        /// 1-based id of the endpoint whose line omits it.
        missing_from: usize,
    },
    /// Non-comment, non-blank content after the last declared vertex
    /// line — the document does not match its header.
    TrailingContent {
        /// 1-based line number of the first trailing data line.
        line: usize,
    },
    /// The header declares more vertices or edges than the document
    /// could possibly contain. Refused **before** any allocation is
    /// sized by the untrusted header fields, so a 20-byte document
    /// claiming `usize::MAX` vertices cannot request terabytes
    /// (resource-exhaustion hardening). The budgets are structural — a
    /// vertex needs its own line, an edge two neighbor listings — not
    /// tunable limits, so no legitimate document is ever refused.
    ImplausibleHeader {
        /// Which count is implausible (`"vertices"` or `"edges"`).
        what: &'static str,
        /// The count the header declares.
        declared: usize,
        /// The most the document could actually hold.
        budget: usize,
    },
}

impl std::fmt::Display for MetisError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MetisError::BadHeader(s) => write!(f, "bad METIS header: {s}"),
            MetisError::BadLine { line, what } => write!(f, "line {line}: {what}"),
            MetisError::EdgeCountMismatch { declared, found } => {
                write!(f, "header declares {declared} edges, body has {found}")
            }
            MetisError::AsymmetricAdjacency {
                listed_by,
                missing_from,
            } => write!(
                f,
                "edge {listed_by}-{missing_from} is listed by vertex {listed_by} \
                 but missing from vertex {missing_from}'s line"
            ),
            MetisError::TrailingContent { line } => {
                write!(
                    f,
                    "line {line}: unexpected content after the last vertex line"
                )
            }
            MetisError::ImplausibleHeader {
                what,
                declared,
                budget,
            } => write!(
                f,
                "header declares {declared} {what}, but the document can hold at \
                 most {budget}; refusing before allocating for an implausible header"
            ),
        }
    }
}

impl std::error::Error for MetisError {}

/// Parse a METIS `.graph` document.
///
/// Robust to the usual transport damage — CRLF line endings and
/// leading/trailing whitespace on data lines are accepted (every line is
/// trimmed) — while genuinely malformed-but-parseable input gets a typed
/// [`MetisError`] rather than a panic: a non-binary `fmt` field, a
/// neighbor listed twice on one line, an edge missing from one
/// endpoint's line ([`MetisError::AsymmetricAdjacency`]), or data lines
/// after the last declared vertex ([`MetisError::TrailingContent`]).
/// Blank lines are treated as decoration and skipped, matching
/// [`write_metis`] (which never emits them: the fmt-011 convention puts
/// at least the vertex weight on every line). Known limitation of that
/// choice: a *bare* fmt-000 document that encodes an isolated vertex as
/// an empty adjacency line cannot be distinguished from decoration and
/// is rejected with a typed error — write such graphs with vertex
/// weights (as [`write_metis`] does) so every line is non-empty.
pub fn parse_metis(input: &str) -> Result<MetisGraph, MetisError> {
    let mut lines = input
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l.trim()))
        .filter(|(_, l)| !l.starts_with('%') && !l.is_empty());

    let (hline, header) = lines
        .next()
        .ok_or_else(|| MetisError::BadHeader("empty input".into()))?;
    let head: Vec<&str> = header.split_whitespace().collect();
    if head.len() < 2 || head.len() > 4 {
        return Err(MetisError::BadHeader(format!("line {hline}: '{header}'")));
    }
    let parse_usize = |s: &str, line: usize| {
        s.parse::<usize>().map_err(|_| MetisError::BadLine {
            line,
            what: format!("expected integer, got '{s}'"),
        })
    };
    let n = parse_usize(head[0], hline)?;
    let m = parse_usize(head[1], hline)?;
    // Plausibility caps, checked before anything is allocated with a
    // header-derived size: `n` vertices need `n` adjacency lines after
    // the header, and `m` edges need two neighbor tokens each (one per
    // endpoint), every token at least one byte. Both budgets come from
    // the document itself — an adversarial header can therefore never
    // make the allocations below exceed O(document size).
    let total_lines = input.lines().count();
    let line_budget = total_lines.saturating_sub(1);
    if n > line_budget {
        return Err(MetisError::ImplausibleHeader {
            what: "vertices",
            declared: n,
            budget: line_budget,
        });
    }
    let edge_budget = input.len() / 2;
    if m > edge_budget {
        return Err(MetisError::ImplausibleHeader {
            what: "edges",
            declared: m,
            budget: edge_budget,
        });
    }
    let fmt = head.get(2).copied().unwrap_or("000");
    if fmt.is_empty() || fmt.len() > 3 || fmt.bytes().any(|b| b != b'0' && b != b'1') {
        return Err(MetisError::BadHeader(format!(
            "line {hline}: fmt field '{fmt}' is not 1–3 binary digits"
        )));
    }
    let has_vweights = fmt.len() >= 2 && fmt.as_bytes()[fmt.len() - 2] == b'1';
    let has_eweights = fmt.as_bytes().last() == Some(&b'1');
    let ncon: usize = if has_vweights {
        head.get(3)
            .map(|s| parse_usize(s, hline))
            .transpose()?
            .unwrap_or(1)
    } else {
        0
    };

    let mut builder = GraphBuilder::new(n);
    let mut weights = vec![1.0; n];
    // Edge costs keyed by canonical endpoints, with one "seen" flag per
    // endpoint side so duplicate and one-sided listings get typed errors
    // instead of leaking into the edge-count arithmetic.
    let mut cost_map: std::collections::HashMap<(u32, u32), (f64, [bool; 2])> =
        std::collections::HashMap::new();
    let mut half_edges = 0usize;

    for v in 0..n as u32 {
        let Some((lno, line)) = lines.next() else {
            return Err(MetisError::BadLine {
                line: total_lines,
                what: format!(
                    "missing adjacency line for vertex {} (isolated vertices must be \
                     written with vertex weights; bare empty lines are skipped)",
                    v + 1
                ),
            });
        };
        let mut tok = line.split_whitespace();
        if has_vweights {
            for c in 0..ncon {
                let w = tok.next().ok_or_else(|| MetisError::BadLine {
                    line: lno,
                    what: "missing vertex weight".into(),
                })?;
                let val = w.parse::<f64>().map_err(|_| MetisError::BadLine {
                    line: lno,
                    what: format!("bad vertex weight '{w}'"),
                })?;
                if c == 0 {
                    weights[v as usize] = val;
                }
            }
        }
        while let Some(nb) = tok.next() {
            let nb1 = parse_usize(nb, lno)?;
            if nb1 == 0 || nb1 > n {
                return Err(MetisError::BadLine {
                    line: lno,
                    what: format!("neighbor {nb1} out of range 1..={n}"),
                });
            }
            let u = (nb1 - 1) as u32;
            let cost = if has_eweights {
                let c = tok.next().ok_or_else(|| MetisError::BadLine {
                    line: lno,
                    what: "missing edge weight".into(),
                })?;
                c.parse::<f64>().map_err(|_| MetisError::BadLine {
                    line: lno,
                    what: format!("bad edge weight '{c}'"),
                })?
            } else {
                1.0
            };
            if u == v {
                return Err(MetisError::BadLine {
                    line: lno,
                    what: format!("self-loop on vertex {}", v + 1),
                });
            }
            half_edges += 1;
            let key = if v < u { (v, u) } else { (u, v) };
            let side = usize::from(v != key.0);
            match cost_map.entry(key) {
                std::collections::hash_map::Entry::Vacant(e) => {
                    let mut seen = [false; 2];
                    seen[side] = true;
                    e.insert((cost, seen));
                    builder.add_edge(v, u);
                }
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    let (stored, seen) = e.get_mut();
                    if (*stored - cost).abs() > 1e-9 * (1.0 + cost.abs()) {
                        return Err(MetisError::BadLine {
                            line: lno,
                            what: format!(
                                "asymmetric edge weight on {}-{}: {} vs {}",
                                key.0 + 1,
                                key.1 + 1,
                                stored,
                                cost
                            ),
                        });
                    }
                    if seen[side] {
                        return Err(MetisError::BadLine {
                            line: lno,
                            what: format!("neighbor {} listed twice for vertex {}", nb1, v + 1),
                        });
                    }
                    seen[side] = true;
                }
            }
        }
    }
    if let Some((lno, _)) = lines.next() {
        return Err(MetisError::TrailingContent { line: lno });
    }
    // Every edge must have been listed from both endpoints; report the
    // smallest offending pair so the error is deterministic.
    let mut asym: Option<(u32, u32, [bool; 2])> = None;
    // lint: allow(hash-order-leak) — min-reduction to the lexicographically
    // smallest offending pair; the result is iteration-order independent.
    for (&(u, v), &(_, seen)) in &cost_map {
        if (!seen[0] || !seen[1]) && asym.is_none_or(|(au, av, _)| (u, v) < (au, av)) {
            asym = Some((u, v, seen));
        }
    }
    if let Some((u, v, seen)) = asym {
        let (listed_by, missing_from) = if seen[0] { (u, v) } else { (v, u) };
        return Err(MetisError::AsymmetricAdjacency {
            listed_by: listed_by as usize + 1,
            missing_from: missing_from as usize + 1,
        });
    }
    if half_edges != 2 * m {
        return Err(MetisError::EdgeCountMismatch {
            declared: m,
            found: half_edges / 2,
        });
    }
    let graph = builder.build();
    let costs = graph
        .edge_list()
        .iter()
        .map(|&(u, v)| cost_map[&(u, v)].0)
        .collect();
    Ok(MetisGraph {
        graph,
        weights,
        costs,
    })
}

/// Serialize to METIS `.graph` format (always writes vertex and edge
/// weights, fmt `011`).
pub fn write_metis(g: &Graph, weights: &[f64], costs: &[f64]) -> String {
    assert_eq!(weights.len(), g.num_vertices());
    assert_eq!(costs.len(), g.num_edges());
    let mut out = String::new();
    let _ = writeln!(out, "{} {} 011 1", g.num_vertices(), g.num_edges());
    for v in g.vertices() {
        let _ = write!(out, "{}", weights[v as usize]);
        for &(nb, e) in g.neighbors(v) {
            let _ = write!(out, " {} {}", nb + 1, costs[e as usize]);
        }
        let _ = writeln!(out);
    }
    out
}

/// Serialize a partition in the `.part` convention (one class per line).
pub fn write_partition(chi: &Coloring) -> String {
    let mut out = String::new();
    for v in 0..chi.num_vertices() as u32 {
        let _ = writeln!(out, "{}", chi.get(v).map(|c| c as i64).unwrap_or(-1));
    }
    out
}

/// Parse a `.part` document into a coloring with `k` classes.
pub fn parse_partition(input: &str, k: usize) -> Result<Coloring, MetisError> {
    let mut colors = Vec::new();
    for (i, line) in input.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('%') {
            continue;
        }
        let c: i64 = line.parse().map_err(|_| MetisError::BadLine {
            line: i + 1,
            what: format!("bad class id '{line}'"),
        })?;
        if c >= k as i64 {
            return Err(MetisError::BadLine {
                line: i + 1,
                what: format!("class {c} out of range for k = {k}"),
            });
        }
        colors.push(if c < 0 {
            crate::coloring::UNCOLORED
        } else {
            c as u32
        });
    }
    Ok(Coloring::from_vec(k, colors))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::graph_from_edges;

    #[test]
    fn roundtrip_weighted() {
        let g = graph_from_edges(4, &[(0, 1), (1, 2), (2, 3), (0, 3)]);
        let weights = vec![1.0, 2.0, 3.0, 4.0];
        let costs = vec![1.5, 2.5, 3.5, 4.5];
        let doc = write_metis(&g, &weights, &costs);
        let back = parse_metis(&doc).unwrap();
        assert_eq!(back.graph.edge_list(), g.edge_list());
        assert_eq!(back.weights, weights);
        assert_eq!(back.costs, costs);
    }

    #[test]
    fn parses_plain_unweighted() {
        // Triangle, no weights.
        let doc = "% a comment\n3 3\n2 3\n1 3\n1 2\n";
        let m = parse_metis(doc).unwrap();
        assert_eq!(m.graph.num_vertices(), 3);
        assert_eq!(m.graph.num_edges(), 3);
        assert_eq!(m.weights, vec![1.0; 3]);
        assert_eq!(m.costs, vec![1.0; 3]);
    }

    #[test]
    fn rejects_malformed() {
        assert!(matches!(parse_metis(""), Err(MetisError::BadHeader(_))));
        // Missing second vertex line: the structural cap catches the raw
        // two-line document (2 declared vertices can't fit in 1 data
        // line); with a comment padding the line count past the cap, the
        // body loop reports the missing line itself.
        assert!(matches!(
            parse_metis("2 1\n2\n"),
            Err(MetisError::ImplausibleHeader {
                what: "vertices",
                declared: 2,
                budget: 1
            })
        ));
        assert!(matches!(
            parse_metis("2 1\n2\n% pad\n"),
            Err(MetisError::BadLine { .. })
        ));
        // Edge count mismatch: header says 2, body has 1.
        assert!(matches!(
            parse_metis("2 2\n2\n1\n"),
            Err(MetisError::EdgeCountMismatch {
                declared: 2,
                found: 1
            })
        ));
        // Out-of-range neighbor.
        assert!(matches!(
            parse_metis("2 1\n3\n1\n"),
            Err(MetisError::BadLine { .. })
        ));
        // Asymmetric edge weights.
        let doc = "2 1 011 1\n1.0 2 5.0\n1.0 1 6.0\n";
        assert!(matches!(parse_metis(doc), Err(MetisError::BadLine { .. })));
    }

    #[test]
    fn crlf_and_trailing_whitespace_roundtrip() {
        let g = graph_from_edges(3, &[(0, 1), (1, 2)]);
        let weights = vec![1.5, 2.0, 0.5];
        let costs = vec![3.0, 4.0];
        let doc = write_metis(&g, &weights, &costs);
        // Windows transport: CRLF endings plus trailing spaces per line.
        let crlf: String = doc
            .lines()
            .map(|l| format!("{l}  \r\n"))
            .collect::<Vec<_>>()
            .concat();
        let back = parse_metis(&crlf).unwrap();
        assert_eq!(back.graph.edge_list(), g.edge_list());
        assert_eq!(back.weights, weights);
        assert_eq!(back.costs, costs);
        // Partitions survive the same treatment.
        let chi = Coloring::from_vec(2, vec![0, 1, 0]);
        let part = write_partition(&chi).replace('\n', " \r\n");
        assert_eq!(parse_partition(&part, 2).unwrap(), chi);
    }

    // The per-variant malformed-document tests for the new
    // `AsymmetricAdjacency` / `TrailingContent` paths live in the
    // canonical integration suite (`tests/metis_io.rs`), next to the
    // rest of the `MetisError` coverage.

    #[test]
    fn adversarial_headers_are_refused_before_allocation() {
        // A tiny document claiming usize::MAX vertices must come back as
        // a typed error without ever attempting the n-sized allocations.
        let huge_n = format!("{} 1\n2\n1\n", usize::MAX);
        assert!(matches!(
            parse_metis(&huge_n),
            Err(MetisError::ImplausibleHeader {
                what: "vertices",
                declared: usize::MAX,
                ..
            })
        ));
        // Same for an edge count the document cannot possibly hold.
        let huge_m = format!("2 {}\n2\n1\n", usize::MAX / 2);
        assert!(matches!(
            parse_metis(&huge_m),
            Err(MetisError::ImplausibleHeader { what: "edges", .. })
        ));
        // Moderately inflated counts are refused too — the budgets are
        // document-derived, not fixed thresholds.
        assert!(matches!(
            parse_metis("1000 1\n2\n1\n"),
            Err(MetisError::ImplausibleHeader {
                what: "vertices",
                declared: 1000,
                budget: 2
            })
        ));
        // Boundary: a header that exactly matches its document parses.
        assert!(parse_metis("2 1\n2\n1\n").is_ok());
        // The error carries a stable, human-readable rendering.
        let msg = parse_metis("9 0\n1\n").unwrap_err().to_string();
        assert!(msg.contains("9 vertices"), "{msg}");
    }

    #[test]
    fn non_binary_fmt_is_a_typed_error() {
        assert!(matches!(
            parse_metis("2 1 abc\n2\n1\n"),
            Err(MetisError::BadHeader(_))
        ));
        assert!(matches!(
            parse_metis("2 1 0110\n2\n1\n"),
            Err(MetisError::BadHeader(_))
        ));
    }

    #[test]
    fn partition_roundtrip() {
        let chi = Coloring::from_vec(3, vec![0, 2, 1, crate::coloring::UNCOLORED]);
        let doc = write_partition(&chi);
        let back = parse_partition(&doc, 3).unwrap();
        assert_eq!(back, chi);
    }

    #[test]
    fn partition_rejects_out_of_range() {
        assert!(parse_partition("0\n5\n", 3).is_err());
    }
}
