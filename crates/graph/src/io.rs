//! METIS-format graph I/O.
//!
//! The METIS `.graph` format is the de-facto exchange format for graph
//! partitioning benchmarks (Chaco/METIS/KaHIP all read it), so a
//! partitioning library needs it to be usable on existing instances.
//!
//! Format (1-indexed):
//!
//! ```text
//! % comment lines start with '%'
//! <n> <m> [fmt [ncon]]      fmt: 3 digits — ignored/vertex-sizes,
//!                            vertex-weights, edge-weights (e.g. "011")
//! <per-vertex line: [weights…] (neighbor [edge-weight])*>
//! ```
//!
//! Each undirected edge appears in both endpoint lines; we validate the
//! symmetry and collapse it. Partitions are written/read as one class id
//! per line (the `.part.k` convention).
//!
//! Ingestion is **streaming**: [`parse_metis_reader`] consumes any
//! [`BufRead`] one line at a time, accumulates forward arcs in flat
//! arenas (no `Vec<Vec<_>>` adjacency, no per-edge hash map), and builds
//! the CSR directly — two passes over the in-memory arc arena (degree
//! count, then fill), one pass over the document. Peak memory is a small
//! constant factor of the final CSR, which is what makes `n = 10^6`–`10^7`
//! instances ingestible; the high water is recorded on the thread's
//! [`Workspace`] as `arena_peak_bytes`. [`parse_metis`] is a thin `&str`
//! wrapper over the same code path.

use std::fmt::Write as _;
use std::io::BufRead;

use crate::coloring::Coloring;
use crate::graph::{csr_capacity_check, Graph};
use crate::workspace::Workspace;

/// A parsed METIS instance.
#[derive(Clone, Debug)]
pub struct MetisGraph {
    /// The graph.
    pub graph: Graph,
    /// Vertex weights (first constraint only; defaults to 1.0).
    pub weights: Vec<f64>,
    /// Edge costs (defaults to 1.0).
    pub costs: Vec<f64>,
}

/// Errors from METIS parsing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MetisError {
    /// The header line is missing or malformed.
    BadHeader(String),
    /// A data line failed to parse.
    BadLine {
        /// 1-based line number in the input.
        line: usize,
        /// Problem description.
        what: String,
    },
    /// The declared edge count does not match the body.
    EdgeCountMismatch {
        /// Edge count declared in the header.
        declared: usize,
        /// Edge count found in the body.
        found: usize,
    },
    /// An edge appears in one endpoint's adjacency line but not the
    /// other's (the format requires every undirected edge twice).
    AsymmetricAdjacency {
        /// 1-based id of the endpoint that lists the edge.
        listed_by: usize,
        /// 1-based id of the endpoint whose line omits it.
        missing_from: usize,
    },
    /// Non-comment, non-blank content after the last declared vertex
    /// line — the document does not match its header.
    TrailingContent {
        /// 1-based line number of the first trailing data line.
        line: usize,
    },
    /// The header declares more vertices or edges than the document
    /// could possibly contain. Refused **before** any allocation is
    /// sized by the untrusted header fields, so a 20-byte document
    /// claiming `usize::MAX` vertices cannot request terabytes
    /// (resource-exhaustion hardening). The budgets are structural — a
    /// vertex needs its own line, an edge two neighbor listings — not
    /// tunable limits, so no legitimate document is ever refused.
    ImplausibleHeader {
        /// Which count is implausible (`"vertices"` or `"edges"`).
        what: &'static str,
        /// The count the header declares.
        declared: usize,
        /// The most the document could actually hold.
        budget: usize,
    },
}

impl std::fmt::Display for MetisError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MetisError::BadHeader(s) => write!(f, "bad METIS header: {s}"),
            MetisError::BadLine { line, what } => write!(f, "line {line}: {what}"),
            MetisError::EdgeCountMismatch { declared, found } => {
                write!(f, "header declares {declared} edges, body has {found}")
            }
            MetisError::AsymmetricAdjacency {
                listed_by,
                missing_from,
            } => write!(
                f,
                "edge {listed_by}-{missing_from} is listed by vertex {listed_by} \
                 but missing from vertex {missing_from}'s line"
            ),
            MetisError::TrailingContent { line } => {
                write!(
                    f,
                    "line {line}: unexpected content after the last vertex line"
                )
            }
            MetisError::ImplausibleHeader {
                what,
                declared,
                budget,
            } => write!(
                f,
                "header declares {declared} {what}, but the document can hold at \
                 most {budget}; refusing before allocating for an implausible header"
            ),
        }
    }
}

impl std::error::Error for MetisError {}

/// Parse a METIS `.graph` document.
///
/// Robust to the usual transport damage — CRLF line endings and
/// leading/trailing whitespace on data lines are accepted (every line is
/// trimmed) — while genuinely malformed-but-parseable input gets a typed
/// [`MetisError`] rather than a panic: a non-binary `fmt` field, a
/// neighbor listed twice on one line, an edge missing from one
/// endpoint's line ([`MetisError::AsymmetricAdjacency`]), or data lines
/// after the last declared vertex ([`MetisError::TrailingContent`]).
/// Blank lines are treated as decoration and skipped, matching
/// [`write_metis`] (which never emits them: the fmt-011 convention puts
/// at least the vertex weight on every line). Known limitation of that
/// choice: a *bare* fmt-000 document that encodes an isolated vertex as
/// an empty adjacency line cannot be distinguished from decoration and
/// is rejected with a typed error — write such graphs with vertex
/// weights (as [`write_metis`] does) so every line is non-empty.
///
/// This is a thin wrapper over [`parse_metis_reader`], which is the
/// streaming entry point for inputs too large to hold as one `&str`.
pub fn parse_metis(input: &str) -> Result<MetisGraph, MetisError> {
    parse_metis_reader(input.as_bytes())
}

/// Incremental line feed over a [`BufRead`]: 1-based raw line numbers,
/// running byte totals, and comment/blank skipping, holding at most one
/// line in memory.
struct LineFeed<R: BufRead> {
    reader: R,
    buf: String,
    line_no: usize,
    bytes: usize,
}

impl<R: BufRead> LineFeed<R> {
    fn new(reader: R) -> Self {
        LineFeed {
            reader,
            buf: String::new(),
            line_no: 0,
            bytes: 0,
        }
    }

    /// Read one raw line into `self.buf`; `Ok(false)` at end of input.
    fn next_raw(&mut self) -> Result<bool, MetisError> {
        self.buf.clear();
        match self.reader.read_line(&mut self.buf) {
            Ok(0) => Ok(false),
            Ok(k) => {
                self.bytes += k;
                self.line_no += 1;
                Ok(true)
            }
            Err(e) => Err(MetisError::BadLine {
                line: self.line_no + 1,
                what: format!("read error: {e}"),
            }),
        }
    }

    /// Advance to the next data (non-comment, non-blank) line, leaving it
    /// in `self.buf`; `Ok(false)` at end of input.
    fn next_data(&mut self) -> Result<bool, MetisError> {
        loop {
            if !self.next_raw()? {
                return Ok(false);
            }
            let t = self.buf.trim();
            if !t.is_empty() && !t.starts_with('%') {
                return Ok(true);
            }
        }
    }

    /// Consume the rest of the input, counting lines and bytes only.
    fn drain(&mut self) -> Result<(), MetisError> {
        while self.next_raw()? {}
        Ok(())
    }
}

fn parse_count(s: &str, line: usize) -> Result<usize, MetisError> {
    s.parse::<usize>().map_err(|_| MetisError::BadLine {
        line,
        what: format!("expected integer, got '{s}'"),
    })
}

fn listed_twice(line: usize, nb1: usize, v: usize) -> MetisError {
    MetisError::BadLine {
        line,
        what: format!("neighbor {} listed twice for vertex {}", nb1, v + 1),
    }
}

fn asym_weight(line: usize, lo: u32, hi: u32, stored: f64, cost: f64) -> MetisError {
    MetisError::BadLine {
        line,
        what: format!(
            "asymmetric edge weight on {}-{}: {} vs {}",
            lo + 1,
            hi + 1,
            stored,
            cost
        ),
    }
}

fn costs_differ(stored: f64, cost: f64) -> bool {
    (stored - cost).abs() > 1e-9 * (1.0 + cost.abs())
}

fn vec_bytes<T>(v: &[T]) -> u64 {
    std::mem::size_of_val(v) as u64
}

/// Streaming core of [`parse_metis`]: parse a METIS `.graph` document from
/// any [`BufRead`] in a single pass over the input.
///
/// Forward arcs (each edge as seen from its lower endpoint) accumulate in
/// flat arenas — target ids, costs, and matched flags in parallel vectors,
/// one offset per vertex — and each vertex's arc range is sorted when its
/// line completes, so the backward listing from the higher endpoint
/// resolves by binary search instead of a hash map. The CSR is then built
/// from the arena in two passes (degree count, then fill). Peak memory is
/// a small constant factor of the output graph and is recorded on the
/// thread-local [`Workspace`] as a transient arena charge.
///
/// The plausibility caps of [`MetisError::ImplausibleHeader`] need the
/// document's total line and byte counts, which a stream only knows at end
/// of input. Body errors are therefore *deferred*: parsing stops at the
/// first one, the remaining input is drained (counting only), and the caps
/// are checked first — preserving the historical error precedence of the
/// eager parser, which scanned the whole document before the body pass.
pub fn parse_metis_reader<R: BufRead>(reader: R) -> Result<MetisGraph, MetisError> {
    let mut feed = LineFeed::new(reader);

    if !feed.next_data()? {
        return Err(MetisError::BadHeader("empty input".into()));
    }
    let hline = feed.line_no;
    let header = feed.buf.trim();
    let head: Vec<&str> = header.split_whitespace().collect();
    if head.len() < 2 || head.len() > 4 {
        return Err(MetisError::BadHeader(format!("line {hline}: '{header}'")));
    }
    let n = parse_count(head[0], hline)?;
    let m = parse_count(head[1], hline)?;

    // First deferrable error (fmt/ncon validation, body errors): recorded,
    // not returned, until the end-of-input caps have had the final say.
    let mut deferred: Option<MetisError> = None;
    let fmt = head.get(2).copied().unwrap_or("000");
    let mut has_eweights = false;
    let mut ncon = 0usize;
    if fmt.is_empty() || fmt.len() > 3 || fmt.bytes().any(|b| b != b'0' && b != b'1') {
        deferred = Some(MetisError::BadHeader(format!(
            "line {hline}: fmt field '{fmt}' is not 1–3 binary digits"
        )));
    } else {
        let has_vweights = fmt.len() >= 2 && fmt.as_bytes()[fmt.len() - 2] == b'1';
        has_eweights = fmt.as_bytes().last() == Some(&b'1');
        if has_vweights {
            match head.get(3).map(|s| parse_count(s, hline)).transpose() {
                Ok(v) => ncon = v.unwrap_or(1),
                Err(e) => deferred = Some(e),
            }
        }
    }

    // Forward-arc arenas: arcs of each edge as listed by its lower
    // endpoint, grouped by that endpoint (`fwd_off`), targets sorted
    // within each group once the group's line completes.
    let mut weights: Vec<f64> = Vec::new();
    let mut fwd_off: Vec<usize> = vec![0];
    let mut fwd_tgt: Vec<u32> = Vec::new();
    let mut fwd_cost: Vec<f64> = Vec::new();
    let mut fwd_back: Vec<bool> = Vec::new();
    // Arcs listed (so far) only by their higher endpoint: (lo, hi, cost).
    // Non-empty only for asymmetric documents, which are rejected.
    let mut orphans: Vec<(u32, u32, f64)> = Vec::new();
    let mut line_sort: Vec<(u32, f64)> = Vec::new();
    let mut half_edges = 0usize;
    let mut missing_vertex: Option<usize> = None;
    let mut trailing: Option<usize> = None;

    if deferred.is_none() {
        'body: for v in 0..n {
            if !feed.next_data()? {
                missing_vertex = Some(v);
                break 'body;
            }
            let lno = feed.line_no;
            if v >= u32::MAX as usize {
                // Unreachable for plausible headers (the caps below bound
                // n by the line count), but keeps the casts honest.
                deferred = Some(MetisError::BadLine {
                    line: lno,
                    what: format!("vertex {} exceeds the u32 id space", v + 1),
                });
                break 'body;
            }
            let vv = v as u32;
            let mut tok = feed.buf.split_whitespace();
            let mut wv = 1.0;
            for c in 0..ncon {
                let Some(w) = tok.next() else {
                    deferred = Some(MetisError::BadLine {
                        line: lno,
                        what: "missing vertex weight".into(),
                    });
                    break 'body;
                };
                match w.parse::<f64>() {
                    Ok(val) => {
                        if c == 0 {
                            wv = val;
                        }
                    }
                    Err(_) => {
                        deferred = Some(MetisError::BadLine {
                            line: lno,
                            what: format!("bad vertex weight '{w}'"),
                        });
                        break 'body;
                    }
                }
            }
            weights.push(wv);
            let range_start = fwd_tgt.len();
            while let Some(nb) = tok.next() {
                let nb1 = match parse_count(nb, lno) {
                    Ok(x) => x,
                    Err(e) => {
                        deferred = Some(e);
                        break 'body;
                    }
                };
                if nb1 == 0 || nb1 > n {
                    deferred = Some(MetisError::BadLine {
                        line: lno,
                        what: format!("neighbor {nb1} out of range 1..={n}"),
                    });
                    break 'body;
                }
                let cost = if has_eweights {
                    let Some(c) = tok.next() else {
                        deferred = Some(MetisError::BadLine {
                            line: lno,
                            what: "missing edge weight".into(),
                        });
                        break 'body;
                    };
                    match c.parse::<f64>() {
                        Ok(x) => x,
                        Err(_) => {
                            deferred = Some(MetisError::BadLine {
                                line: lno,
                                what: format!("bad edge weight '{c}'"),
                            });
                            break 'body;
                        }
                    }
                } else {
                    1.0
                };
                let u_us = nb1 - 1;
                if u_us == v {
                    deferred = Some(MetisError::BadLine {
                        line: lno,
                        what: format!("self-loop on vertex {}", v + 1),
                    });
                    break 'body;
                }
                half_edges += 1;
                if u_us >= u32::MAX as usize {
                    deferred = Some(MetisError::BadLine {
                        line: lno,
                        what: format!("neighbor {nb1} exceeds the u32 id space"),
                    });
                    break 'body;
                }
                let u = u_us as u32;
                if u > vv {
                    fwd_tgt.push(u);
                    if has_eweights {
                        fwd_cost.push(cost);
                    }
                    fwd_back.push(false);
                } else {
                    // Backward half of an edge whose lower endpoint's
                    // range is already finalized and sorted.
                    let (lo, hi) = (fwd_off[u_us], fwd_off[u_us + 1]);
                    match fwd_tgt[lo..hi].binary_search(&vv) {
                        Ok(i) => {
                            let idx = lo + i;
                            let stored = if has_eweights { fwd_cost[idx] } else { 1.0 };
                            if costs_differ(stored, cost) {
                                deferred = Some(asym_weight(lno, u, vv, stored, cost));
                                break 'body;
                            }
                            if fwd_back[idx] {
                                deferred = Some(listed_twice(lno, nb1, v));
                                break 'body;
                            }
                            fwd_back[idx] = true;
                        }
                        Err(_) => {
                            // Only vertex v's own line can mention (u, v)
                            // again, so a hit here is a same-line duplicate
                            // of a one-sided listing.
                            if let Some(o) = orphans.iter().find(|o| o.0 == u && o.1 == vv) {
                                deferred = Some(if costs_differ(o.2, cost) {
                                    asym_weight(lno, u, vv, o.2, cost)
                                } else {
                                    listed_twice(lno, nb1, v)
                                });
                                break 'body;
                            }
                            orphans.push((u, vv, cost));
                        }
                    }
                }
            }
            // Finalize this vertex's forward range: sort by target (so
            // later backward lookups can binary-search it) and reject
            // same-line duplicate listings.
            let range_end = fwd_tgt.len();
            if range_end - range_start > 1 {
                if has_eweights {
                    line_sort.clear();
                    line_sort.extend(
                        fwd_tgt[range_start..range_end]
                            .iter()
                            .copied()
                            .zip(fwd_cost[range_start..range_end].iter().copied()),
                    );
                    // Stable: the first listing's cost wins, as with the
                    // historical first-insert-wins map.
                    line_sort.sort_by_key(|&(t, _)| t);
                    for w in line_sort.windows(2) {
                        if w[0].0 == w[1].0 {
                            deferred = Some(if costs_differ(w[0].1, w[1].1) {
                                asym_weight(lno, vv, w[0].0, w[0].1, w[1].1)
                            } else {
                                listed_twice(lno, w[0].0 as usize + 1, v)
                            });
                            break 'body;
                        }
                    }
                    for (i, &(t, c)) in line_sort.iter().enumerate() {
                        fwd_tgt[range_start + i] = t;
                        fwd_cost[range_start + i] = c;
                    }
                } else {
                    fwd_tgt[range_start..range_end].sort_unstable();
                    for w in fwd_tgt[range_start..range_end].windows(2) {
                        if w[0] == w[1] {
                            deferred = Some(listed_twice(lno, w[0] as usize + 1, v));
                            break 'body;
                        }
                    }
                }
            }
            fwd_off.push(range_end);
        }
        if deferred.is_none() && missing_vertex.is_none() && feed.next_data()? {
            trailing = Some(feed.line_no);
        }
    }

    // End of input: the plausibility caps are now known and outrank every
    // deferred error. `n` vertices need `n` data lines after the header;
    // `m` edges need two neighbor tokens each, every token ≥ one byte.
    // Both budgets come from the document itself, so an adversarial header
    // can never have made the arenas above exceed O(document size).
    feed.drain()?;
    let total_lines = feed.line_no;
    let line_budget = total_lines.saturating_sub(1);
    if n > line_budget {
        return Err(MetisError::ImplausibleHeader {
            what: "vertices",
            declared: n,
            budget: line_budget,
        });
    }
    let edge_budget = feed.bytes / 2;
    if m > edge_budget {
        return Err(MetisError::ImplausibleHeader {
            what: "edges",
            declared: m,
            budget: edge_budget,
        });
    }
    if let Some(e) = deferred {
        return Err(e);
    }
    if let Some(v) = missing_vertex {
        return Err(MetisError::BadLine {
            line: total_lines,
            what: format!(
                "missing adjacency line for vertex {} (isolated vertices must be \
                 written with vertex weights; bare empty lines are skipped)",
                v + 1
            ),
        });
    }
    if let Some(line) = trailing {
        return Err(MetisError::TrailingContent { line });
    }

    // Every edge must have been listed from both endpoints; report the
    // smallest offending pair so the error is deterministic. The forward
    // scan visits keys in ascending (lo, hi) order, so its first hit is
    // already minimal among forward arcs.
    let mut asym: Option<(u32, u32, bool)> = None;
    'scan: for (v, w) in fwd_off.windows(2).enumerate() {
        for idx in w[0]..w[1] {
            if !fwd_back[idx] {
                asym = Some((v as u32, fwd_tgt[idx], true));
                break 'scan;
            }
        }
    }
    for &(lo, hi, _) in &orphans {
        if asym.is_none_or(|(a, b, _)| (lo, hi) < (a, b)) {
            asym = Some((lo, hi, false));
        }
    }
    if let Some((lo, hi, by_lower)) = asym {
        let (listed_by, missing_from) = if by_lower { (lo, hi) } else { (hi, lo) };
        return Err(MetisError::AsymmetricAdjacency {
            listed_by: listed_by as usize + 1,
            missing_from: missing_from as usize + 1,
        });
    }
    if half_edges != 2 * m {
        return Err(MetisError::EdgeCountMismatch {
            declared: m,
            found: half_edges / 2,
        });
    }

    // CSR assembly from the arena: degree count, prefix sum, fill. Edge
    // ids are the arena's (lo, hi)-ascending order — the same canonical
    // order `GraphBuilder` assigns.
    let m_found = fwd_tgt.len();
    debug_assert_eq!(2 * m_found, half_edges);
    csr_capacity_check(n, m_found)
        .map_err(|e| MetisError::BadHeader(format!("graph exceeds the u32 id space: {e}")))?;
    let mut edges: Vec<(u32, u32)> = Vec::with_capacity(m_found);
    for (v, w) in fwd_off.windows(2).enumerate() {
        for &t in &fwd_tgt[w[0]..w[1]] {
            edges.push((v as u32, t));
        }
    }
    let mut adj_off = vec![0u32; n + 1];
    for &(u, v) in &edges {
        adj_off[u as usize + 1] += 1;
        adj_off[v as usize + 1] += 1;
    }
    let mut acc = 0u32;
    for o in adj_off.iter_mut() {
        acc += *o;
        *o = acc;
    }
    let mut cursor = adj_off.clone();
    let mut adj = vec![(0u32, 0u32); 2 * m_found];
    for (e, &(u, v)) in edges.iter().enumerate() {
        let eid = e as u32;
        adj[cursor[u as usize] as usize] = (v, eid);
        cursor[u as usize] += 1;
        adj[cursor[v as usize] as usize] = (u, eid);
        cursor[v as usize] += 1;
    }
    drop(cursor);
    let costs = if has_eweights {
        fwd_cost
    } else {
        vec![1.0; m_found]
    };

    // Record the ingestion high water (arenas + CSR coexist here) on the
    // thread's workspace — the RSS proxy the scaling bench budgets.
    let arena_bytes = vec_bytes(&fwd_tgt)
        + vec_bytes(&fwd_back)
        + vec_bytes(&fwd_off)
        + vec_bytes(&orphans)
        + vec_bytes(&line_sort)
        + vec_bytes(&edges)
        + vec_bytes(&adj)
        + vec_bytes(&adj_off) * 2
        + vec_bytes(&weights)
        + vec_bytes(&costs);
    Workspace::with_local(|ws| ws.note_transient_arena_bytes(arena_bytes));

    let graph = Graph::from_csr_parts(n, adj_off, adj, edges);
    Ok(MetisGraph {
        graph,
        weights,
        costs,
    })
}

/// Serialize to METIS `.graph` format (always writes vertex and edge
/// weights, fmt `011`).
pub fn write_metis(g: &Graph, weights: &[f64], costs: &[f64]) -> String {
    assert_eq!(weights.len(), g.num_vertices());
    assert_eq!(costs.len(), g.num_edges());
    let mut out = String::new();
    let _ = writeln!(out, "{} {} 011 1", g.num_vertices(), g.num_edges());
    for v in g.vertices() {
        let _ = write!(out, "{}", weights[v as usize]);
        for &(nb, e) in g.neighbors(v) {
            let _ = write!(out, " {} {}", nb + 1, costs[e as usize]);
        }
        let _ = writeln!(out);
    }
    out
}

/// Serialize a partition in the `.part` convention (one class per line).
pub fn write_partition(chi: &Coloring) -> String {
    let mut out = String::new();
    for v in 0..chi.num_vertices() as u32 {
        let _ = writeln!(out, "{}", chi.get(v).map(|c| c as i64).unwrap_or(-1));
    }
    out
}

/// Parse a `.part` document into a coloring with `k` classes.
pub fn parse_partition(input: &str, k: usize) -> Result<Coloring, MetisError> {
    let mut colors = Vec::new();
    for (i, line) in input.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('%') {
            continue;
        }
        let c: i64 = line.parse().map_err(|_| MetisError::BadLine {
            line: i + 1,
            what: format!("bad class id '{line}'"),
        })?;
        if c >= k as i64 {
            return Err(MetisError::BadLine {
                line: i + 1,
                what: format!("class {c} out of range for k = {k}"),
            });
        }
        colors.push(if c < 0 {
            crate::coloring::UNCOLORED
        } else {
            c as u32
        });
    }
    Ok(Coloring::from_vec(k, colors))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::graph_from_edges;

    #[test]
    fn roundtrip_weighted() {
        let g = graph_from_edges(4, &[(0, 1), (1, 2), (2, 3), (0, 3)]);
        let weights = vec![1.0, 2.0, 3.0, 4.0];
        let costs = vec![1.5, 2.5, 3.5, 4.5];
        let doc = write_metis(&g, &weights, &costs);
        let back = parse_metis(&doc).unwrap();
        assert_eq!(back.graph.edge_list(), g.edge_list());
        assert_eq!(back.weights, weights);
        assert_eq!(back.costs, costs);
    }

    #[test]
    fn parses_plain_unweighted() {
        // Triangle, no weights.
        let doc = "% a comment\n3 3\n2 3\n1 3\n1 2\n";
        let m = parse_metis(doc).unwrap();
        assert_eq!(m.graph.num_vertices(), 3);
        assert_eq!(m.graph.num_edges(), 3);
        assert_eq!(m.weights, vec![1.0; 3]);
        assert_eq!(m.costs, vec![1.0; 3]);
    }

    #[test]
    fn rejects_malformed() {
        assert!(matches!(parse_metis(""), Err(MetisError::BadHeader(_))));
        // Missing second vertex line: the structural cap catches the raw
        // two-line document (2 declared vertices can't fit in 1 data
        // line); with a comment padding the line count past the cap, the
        // body loop reports the missing line itself.
        assert!(matches!(
            parse_metis("2 1\n2\n"),
            Err(MetisError::ImplausibleHeader {
                what: "vertices",
                declared: 2,
                budget: 1
            })
        ));
        assert!(matches!(
            parse_metis("2 1\n2\n% pad\n"),
            Err(MetisError::BadLine { .. })
        ));
        // Edge count mismatch: header says 2, body has 1.
        assert!(matches!(
            parse_metis("2 2\n2\n1\n"),
            Err(MetisError::EdgeCountMismatch {
                declared: 2,
                found: 1
            })
        ));
        // Out-of-range neighbor.
        assert!(matches!(
            parse_metis("2 1\n3\n1\n"),
            Err(MetisError::BadLine { .. })
        ));
        // Asymmetric edge weights.
        let doc = "2 1 011 1\n1.0 2 5.0\n1.0 1 6.0\n";
        assert!(matches!(parse_metis(doc), Err(MetisError::BadLine { .. })));
    }

    #[test]
    fn crlf_and_trailing_whitespace_roundtrip() {
        let g = graph_from_edges(3, &[(0, 1), (1, 2)]);
        let weights = vec![1.5, 2.0, 0.5];
        let costs = vec![3.0, 4.0];
        let doc = write_metis(&g, &weights, &costs);
        // Windows transport: CRLF endings plus trailing spaces per line.
        let crlf: String = doc
            .lines()
            .map(|l| format!("{l}  \r\n"))
            .collect::<Vec<_>>()
            .concat();
        let back = parse_metis(&crlf).unwrap();
        assert_eq!(back.graph.edge_list(), g.edge_list());
        assert_eq!(back.weights, weights);
        assert_eq!(back.costs, costs);
        // Partitions survive the same treatment.
        let chi = Coloring::from_vec(2, vec![0, 1, 0]);
        let part = write_partition(&chi).replace('\n', " \r\n");
        assert_eq!(parse_partition(&part, 2).unwrap(), chi);
    }

    // The per-variant malformed-document tests for the new
    // `AsymmetricAdjacency` / `TrailingContent` paths live in the
    // canonical integration suite (`tests/metis_io.rs`), next to the
    // rest of the `MetisError` coverage.

    #[test]
    fn adversarial_headers_are_refused_before_allocation() {
        // A tiny document claiming usize::MAX vertices must come back as
        // a typed error without ever attempting the n-sized allocations.
        let huge_n = format!("{} 1\n2\n1\n", usize::MAX);
        assert!(matches!(
            parse_metis(&huge_n),
            Err(MetisError::ImplausibleHeader {
                what: "vertices",
                declared: usize::MAX,
                ..
            })
        ));
        // Same for an edge count the document cannot possibly hold.
        let huge_m = format!("2 {}\n2\n1\n", usize::MAX / 2);
        assert!(matches!(
            parse_metis(&huge_m),
            Err(MetisError::ImplausibleHeader { what: "edges", .. })
        ));
        // Moderately inflated counts are refused too — the budgets are
        // document-derived, not fixed thresholds.
        assert!(matches!(
            parse_metis("1000 1\n2\n1\n"),
            Err(MetisError::ImplausibleHeader {
                what: "vertices",
                declared: 1000,
                budget: 2
            })
        ));
        // Boundary: a header that exactly matches its document parses.
        assert!(parse_metis("2 1\n2\n1\n").is_ok());
        // The error carries a stable, human-readable rendering.
        let msg = parse_metis("9 0\n1\n").unwrap_err().to_string();
        assert!(msg.contains("9 vertices"), "{msg}");
    }

    #[test]
    fn non_binary_fmt_is_a_typed_error() {
        assert!(matches!(
            parse_metis("2 1 abc\n2\n1\n"),
            Err(MetisError::BadHeader(_))
        ));
        assert!(matches!(
            parse_metis("2 1 0110\n2\n1\n"),
            Err(MetisError::BadHeader(_))
        ));
    }

    #[test]
    fn partition_roundtrip() {
        let chi = Coloring::from_vec(3, vec![0, 2, 1, crate::coloring::UNCOLORED]);
        let doc = write_partition(&chi);
        let back = parse_partition(&doc, 3).unwrap();
        assert_eq!(back, chi);
    }

    #[test]
    fn partition_rejects_out_of_range() {
        assert!(parse_partition("0\n5\n", 3).is_err());
    }
}
