//! Immutable CSR graph representation.
//!
//! All graphs in this library are finite, undirected, without self-loops or
//! parallel edges (the paper's standing assumption, Section 1 "Notation").
//! Vertices are dense `u32` ids `0..n`; edges are dense `u32` ids `0..m`
//! with canonical endpoints `u < v`.

use std::fmt;

/// Dense vertex identifier (`0..n`).
pub type VertexId = u32;
/// Dense edge identifier (`0..m`).
pub type EdgeId = u32;

/// The declared graph shape does not fit the dense `u32` id space the CSR
/// representation uses.
///
/// The CSR offsets, adjacency cursors, and edge ids are all `u32`: a graph
/// with `n ≥ u32::MAX` vertices or `2m > u32::MAX` adjacency entries would
/// silently wrap those counters and build a corrupt adjacency. The check
/// is pure arithmetic on the declared counts, so callers (the METIS
/// parser, ingestion fronts) can refuse an oversized instance *before*
/// allocating anything sized by it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GraphCapacityError {
    /// `n ≥ u32::MAX` — vertex ids would not be dense `u32`s.
    TooManyVertices {
        /// The declared vertex count.
        n: usize,
    },
    /// `2m > u32::MAX` — CSR offsets/cursors or edge ids would wrap.
    TooManyEdges {
        /// The declared (deduplicated) edge count.
        m: usize,
    },
}

impl fmt::Display for GraphCapacityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphCapacityError::TooManyVertices { n } => write!(
                f,
                "{n} vertices exceed the dense u32 id space (max {})",
                u32::MAX - 1
            ),
            GraphCapacityError::TooManyEdges { m } => write!(
                f,
                "{m} edges need {} adjacency entries, exceeding the u32 CSR \
                 offset space (max {})",
                2 * m,
                u32::MAX
            ),
        }
    }
}

impl std::error::Error for GraphCapacityError {}

/// Check that a graph with `n` vertices and `m` (deduplicated) edges fits
/// the `u32` CSR id space — see [`GraphCapacityError`].
///
/// `O(1)`: validates the declared counts directly, without allocating, so
/// a guard against a 4-billion-edge input costs nothing.
pub fn csr_capacity_check(n: usize, m: usize) -> Result<(), GraphCapacityError> {
    if n >= u32::MAX as usize {
        return Err(GraphCapacityError::TooManyVertices { n });
    }
    // 2m adjacency entries are indexed by u32 cursors; m edge ids must
    // also fit (implied by the stronger 2m bound).
    if m.checked_mul(2).is_none_or(|d| d > u32::MAX as usize) {
        return Err(GraphCapacityError::TooManyEdges { m });
    }
    Ok(())
}

/// An immutable undirected graph in CSR form.
///
/// The size of the graph in the paper's sense is `|G| = |V| + |E|`
/// ([`Graph::size`]); the running-time statements of Theorem 4 are linear
/// functions of this size.
#[derive(Clone)]
pub struct Graph {
    n: usize,
    /// CSR offsets into `adj`, length `n + 1`.
    adj_off: Vec<u32>,
    /// Flattened adjacency: `(neighbor, edge id)` pairs, length `2m`.
    adj: Vec<(VertexId, EdgeId)>,
    /// Edge endpoint list with `u < v`, length `m`.
    edges: Vec<(VertexId, VertexId)>,
}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Graph")
            .field("n", &self.n)
            .field("m", &self.num_edges())
            .finish()
    }
}

impl Graph {
    /// Number of vertices `n = |V|`.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Number of edges `m = |E|`.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The paper's size measure `|G| = |V| + |E|`.
    #[inline]
    pub fn size(&self) -> usize {
        self.n + self.edges.len()
    }

    /// Iterator over all vertex ids `0..n`.
    #[inline]
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        (0..self.n as u32).map(|v| v as VertexId)
    }

    /// Endpoints `(u, v)` of edge `e`, with `u < v`.
    #[inline]
    pub fn endpoints(&self, e: EdgeId) -> (VertexId, VertexId) {
        self.edges[e as usize]
    }

    /// All edges as `(u, v)` pairs with `u < v`, indexed by edge id.
    #[inline]
    pub fn edge_list(&self) -> &[(VertexId, VertexId)] {
        &self.edges
    }

    /// Adjacency of vertex `v`: `(neighbor, edge id)` pairs, sorted by
    /// neighbor id (each neighbor appears once, so the order is strict).
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[(VertexId, EdgeId)] {
        let lo = self.adj_off[v as usize] as usize;
        let hi = self.adj_off[v as usize + 1] as usize;
        &self.adj[lo..hi]
    }

    /// Degree of vertex `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        (self.adj_off[v as usize + 1] - self.adj_off[v as usize]) as usize
    }

    /// Maximum degree `Δ(G)`.
    pub fn max_degree(&self) -> usize {
        (0..self.n)
            .map(|v| self.degree(v as u32))
            .max()
            .unwrap_or(0)
    }

    /// The other endpoint of edge `e` as seen from `v`.
    ///
    /// # Panics
    /// Panics in debug builds if `v` is not an endpoint of `e`.
    #[inline]
    pub fn other_endpoint(&self, e: EdgeId, v: VertexId) -> VertexId {
        let (a, b) = self.endpoints(e);
        debug_assert!(
            v == a || v == b,
            "vertex {v} is not an endpoint of edge {e}"
        );
        if v == a {
            b
        } else {
            a
        }
    }

    /// Whether an edge joins `u` and `v`: binary search of the shorter
    /// adjacency list (`O(log Δ)`; adjacency is sorted by neighbor id).
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        let (a, b) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.neighbors(a)
            .binary_search_by_key(&b, |&(nb, _)| nb)
            .is_ok()
    }

    /// Connected components; returns a component id per vertex and the
    /// number of components.
    pub fn components(&self) -> (Vec<u32>, usize) {
        let mut comp = vec![u32::MAX; self.n];
        let mut stack = Vec::new();
        let mut next = 0u32;
        for s in 0..self.n as u32 {
            if comp[s as usize] != u32::MAX {
                continue;
            }
            comp[s as usize] = next;
            stack.push(s);
            while let Some(v) = stack.pop() {
                for &(nb, _) in self.neighbors(v) {
                    if comp[nb as usize] == u32::MAX {
                        comp[nb as usize] = next;
                        stack.push(nb);
                    }
                }
            }
            next += 1;
        }
        (comp, next as usize)
    }

    /// Whether the graph is connected (the empty graph counts as connected).
    pub fn is_connected(&self) -> bool {
        self.n == 0 || self.components().1 == 1
    }
}

/// Incremental builder for [`Graph`].
///
/// Rejects self-loops and silently deduplicates parallel edges (keeping the
/// first occurrence), matching the paper's graph model.
#[derive(Clone, Debug, Default)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<(VertexId, VertexId)>,
}

impl GraphBuilder {
    /// Builder for a graph with `n` isolated vertices.
    pub fn new(n: usize) -> Self {
        assert!(n < u32::MAX as usize, "vertex count exceeds u32 id space");
        Self {
            n,
            edges: Vec::new(),
        }
    }

    /// Number of vertices configured so far.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Ensure at least `n` vertices exist.
    pub fn grow_to(&mut self, n: usize) {
        self.n = self.n.max(n);
    }

    /// Add an undirected edge `{u, v}`. Returns the edge's eventual position
    /// in insertion order **before deduplication**; callers that need stable
    /// edge ids should use [`GraphBuilder::build`]'s deduplicated order.
    ///
    /// # Panics
    /// Panics on self-loops or out-of-range endpoints.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId) {
        assert_ne!(u, v, "self-loop {u}-{v} rejected");
        assert!(
            (u as usize) < self.n && (v as usize) < self.n,
            "edge {u}-{v} out of range (n = {})",
            self.n
        );
        let (a, b) = if u < v { (u, v) } else { (v, u) };
        self.edges.push((a, b));
    }

    /// Finalize into an immutable CSR [`Graph`].
    ///
    /// Edge ids are assigned in sorted `(u, v)` order after deduplication,
    /// and each adjacency list is sorted by neighbor id, so two builds from
    /// the same edge multiset yield identical graphs with identical
    /// iteration order everywhere.
    ///
    /// # Panics
    /// Panics if the deduplicated edge count overflows the `u32` CSR id
    /// space (`2m > u32::MAX`) — use [`GraphBuilder::try_build`] to get
    /// the typed [`GraphCapacityError`] instead. Silent wraparound of the
    /// `u32` degree counters is never possible.
    pub fn build(self) -> Graph {
        match self.try_build() {
            Ok(g) => g,
            // lint: allow(panic-in-lib) — documented contract: `build` is
            // the infallible convenience over `try_build`, and capacity
            // overflow is a caller bug (same policy as `add_edge`'s
            // asserts). The typed path exists and is one call away.
            Err(e) => panic!("GraphBuilder::build: {e}"),
        }
    }

    /// [`GraphBuilder::build`], returning a typed error instead of
    /// panicking when the graph exceeds the `u32` CSR id space.
    ///
    /// The degree counters, prefix-summed offsets, and fill cursors below
    /// are all `u32`; without this guard a graph with `2m > u32::MAX`
    /// would wrap them silently and build a corrupt adjacency.
    pub fn try_build(mut self) -> Result<Graph, GraphCapacityError> {
        self.edges.sort_unstable();
        self.edges.dedup();
        let n = self.n;
        let m = self.edges.len();
        csr_capacity_check(n, m)?;
        let mut deg = vec![0u32; n + 1];
        for &(u, v) in &self.edges {
            deg[u as usize + 1] += 1;
            deg[v as usize + 1] += 1;
        }
        for i in 0..n {
            deg[i + 1] += deg[i];
        }
        let adj_off = deg;
        let mut cursor = adj_off.clone();
        let mut adj = vec![(0u32, 0u32); 2 * m];
        for (e, &(u, v)) in self.edges.iter().enumerate() {
            let e = e as u32;
            adj[cursor[u as usize] as usize] = (v, e);
            cursor[u as usize] += 1;
            adj[cursor[v as usize] as usize] = (u, e);
            cursor[v as usize] += 1;
        }
        // Canonicalize each adjacency list by neighbor id (neighbors are
        // unique after dedup), enabling binary-search membership tests and
        // making traversal order independent of edge-insertion history.
        for v in 0..n {
            let lo = adj_off[v] as usize;
            let hi = adj_off[v + 1] as usize;
            adj[lo..hi].sort_unstable();
        }
        Ok(Graph {
            n,
            adj_off,
            adj,
            edges: self.edges,
        })
    }
}

impl Graph {
    /// Assemble a [`Graph`] directly from pre-validated CSR parts — the
    /// streaming-ingestion fast path, which already holds the adjacency in
    /// flat arenas and must not round-trip through the builder's edge
    /// buffer (that would double peak memory).
    ///
    /// Invariants the caller must guarantee (checked in debug builds):
    /// `edges` sorted by `(u, v)` with `u < v` and deduplicated; `adj_off`
    /// of length `n + 1` prefix-summing the degrees; `adj` of length `2m`
    /// with each vertex's slice sorted by neighbor id and edge ids
    /// matching `edges`' positions. Capacity (`csr_capacity_check`) must
    /// already have been enforced.
    pub(crate) fn from_csr_parts(
        n: usize,
        adj_off: Vec<u32>,
        adj: Vec<(VertexId, EdgeId)>,
        edges: Vec<(VertexId, VertexId)>,
    ) -> Graph {
        debug_assert_eq!(adj_off.len(), n + 1);
        debug_assert_eq!(adj.len(), 2 * edges.len());
        debug_assert!(edges.windows(2).all(|w| w[0] < w[1]), "edges not canonical");
        debug_assert!(edges.iter().all(|&(u, v)| u < v), "endpoint order");
        debug_assert!((0..n).all(|v| {
            let s = &adj[adj_off[v] as usize..adj_off[v + 1] as usize];
            s.windows(2).all(|w| w[0].0 < w[1].0)
        }));
        Graph {
            n,
            adj_off,
            adj,
            edges,
        }
    }
}

/// Convenience constructor from an edge list (used pervasively in tests).
pub fn graph_from_edges(n: usize, edges: &[(VertexId, VertexId)]) -> Graph {
    let mut b = GraphBuilder::new(n);
    for &(u, v) in edges {
        b.add_edge(u, v);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new(0).build();
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.size(), 0);
        assert!(g.is_connected());
    }

    #[test]
    fn isolated_vertices() {
        let g = GraphBuilder::new(5).build();
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.components().1, 5);
        assert!(!g.is_connected());
    }

    #[test]
    fn triangle_basics() {
        let g = graph_from_edges(3, &[(0, 1), (1, 2), (0, 2)]);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.size(), 6);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.max_degree(), 2);
        assert!(g.has_edge(0, 2));
        assert!(g.has_edge(2, 0));
        assert!(!g.has_edge(0, 0));
        assert!(g.is_connected());
    }

    #[test]
    fn dedup_parallel_edges() {
        let g = graph_from_edges(2, &[(0, 1), (1, 0), (0, 1)]);
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.endpoints(0), (0, 1));
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn rejects_self_loop() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(1, 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 2);
    }

    #[test]
    fn edge_ids_are_canonical() {
        // Identical edge multisets in different orders build identical graphs.
        let g1 = graph_from_edges(4, &[(2, 3), (0, 1), (1, 2)]);
        let g2 = graph_from_edges(4, &[(1, 2), (2, 3), (0, 1)]);
        assert_eq!(g1.edge_list(), g2.edge_list());
    }

    #[test]
    fn adjacency_and_edge_ids_stay_canonical() {
        // A denser graph, inserted in two scrambled orders: edge ids follow
        // sorted (u, v) order and every adjacency list is sorted by
        // neighbor id — identical iteration order for both builds.
        let edges = [
            (0u32, 3u32),
            (1, 4),
            (0, 1),
            (2, 3),
            (3, 4),
            (0, 4),
            (1, 2),
            (0, 2),
        ];
        let mut rev = edges;
        rev.reverse();
        let g1 = graph_from_edges(5, &edges);
        let g2 = graph_from_edges(5, &rev);
        assert_eq!(g1.edge_list(), g2.edge_list());
        // Edge ids enumerate the sorted canonical endpoint list.
        let mut sorted = edges.to_vec();
        sorted.sort_unstable();
        for (e, &(u, v)) in sorted.iter().enumerate() {
            assert_eq!(g1.endpoints(e as u32), (u, v));
        }
        for v in g1.vertices() {
            assert_eq!(g1.neighbors(v), g2.neighbors(v));
            let ids: Vec<u32> = g1.neighbors(v).iter().map(|&(nb, _)| nb).collect();
            assert!(
                ids.windows(2).all(|w| w[0] < w[1]),
                "adjacency of {v} not sorted: {ids:?}"
            );
            // The stored edge ids agree with the canonical endpoint list.
            for &(nb, e) in g1.neighbors(v) {
                let (a, b) = g1.endpoints(e);
                assert_eq!((a.min(b), a.max(b)), (v.min(nb), v.max(nb)));
            }
        }
        // Binary-search membership agrees with the edge list in both
        // directions, and rejects non-edges.
        for u in 0..5u32 {
            for v in 0..5u32 {
                let expect = u != v && sorted.contains(&(u.min(v), u.max(v)));
                assert_eq!(g1.has_edge(u, v), expect, "has_edge({u}, {v})");
            }
        }
    }

    #[test]
    fn degrees_on_a_disconnected_graph() {
        // Two components and two isolated vertices: degree and max_degree
        // must not assume connectivity.
        let g = graph_from_edges(7, &[(0, 1), (1, 2), (0, 2), (4, 5)]);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(3), 0);
        assert_eq!(g.degree(4), 1);
        assert_eq!(g.degree(6), 0);
        assert_eq!(g.max_degree(), 2);
        assert!(!g.is_connected());
        assert_eq!(g.components().1, 4);
        // The all-isolated graph has max degree 0.
        assert_eq!(GraphBuilder::new(3).build().max_degree(), 0);
    }

    #[test]
    fn other_endpoint_works() {
        let g = graph_from_edges(3, &[(0, 2)]);
        assert_eq!(g.other_endpoint(0, 0), 2);
        assert_eq!(g.other_endpoint(0, 2), 0);
    }

    #[test]
    fn capacity_guard_fires_without_allocating() {
        // The guard validates declared counts directly — no 4-billion-edge
        // allocation needed to prove the wraparound is refused.
        assert_eq!(
            csr_capacity_check(u32::MAX as usize, 0),
            Err(GraphCapacityError::TooManyVertices {
                n: u32::MAX as usize
            })
        );
        // 2m > u32::MAX: the old u32 degree/cursor arithmetic wrapped here.
        let m_over = (u32::MAX as usize / 2) + 1;
        assert_eq!(
            csr_capacity_check(10, m_over),
            Err(GraphCapacityError::TooManyEdges { m: m_over })
        );
        // usize overflow of 2m itself is also caught, not wrapped.
        assert_eq!(
            csr_capacity_check(10, usize::MAX),
            Err(GraphCapacityError::TooManyEdges { m: usize::MAX })
        );
        // Boundary: exactly 2m == u32::MAX entries fit.
        assert_eq!(csr_capacity_check(10, u32::MAX as usize / 2), Ok(()));
        assert_eq!(csr_capacity_check(0, 0), Ok(()));
        // The error renders the offending count.
        let msg = csr_capacity_check(3, m_over).unwrap_err().to_string();
        assert!(msg.contains("adjacency entries"), "{msg}");
    }

    #[test]
    fn try_build_matches_build_on_valid_input() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1);
        b.add_edge(2, 3);
        let g = b.clone().try_build().unwrap();
        let g2 = b.build();
        assert_eq!(g.edge_list(), g2.edge_list());
        assert_eq!(g.num_vertices(), 4);
    }

    #[test]
    fn components_of_two_triangles() {
        let g = graph_from_edges(6, &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)]);
        let (comp, count) = g.components();
        assert_eq!(count, 2);
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[0], comp[2]);
        assert_eq!(comp[3], comp[4]);
        assert_ne!(comp[0], comp[3]);
    }
}
