//! Disjoint unions of instances — the `G̃ = G^{(1)} ∪̇ … ∪̇ G^{(⌊k/4⌋)}`
//! construction behind the tightness results (Theorem 5, Lemma 40).
//!
//! Vertices of copy `i` occupy the contiguous id block
//! `[i·n₀, (i+1)·n₀)`; edge costs and vertex weights are replicated with
//! [`replicate_measure`].

use crate::graph::{Graph, GraphBuilder, VertexId};

/// Result of a disjoint union of `copies` copies of a base instance.
pub struct DisjointUnion {
    /// The union graph `G̃`.
    pub graph: Graph,
    /// Replicated edge costs `c̃`, aligned with `graph`'s edge ids.
    pub costs: Vec<f64>,
    /// Number of copies.
    pub copies: usize,
    /// Vertices per copy (the base graph's `n`).
    pub base_n: usize,
}

impl DisjointUnion {
    /// The copy index of a union vertex.
    pub fn copy_of(&self, v: VertexId) -> usize {
        v as usize / self.base_n
    }

    /// The base-graph vertex a union vertex corresponds to.
    pub fn base_vertex(&self, v: VertexId) -> VertexId {
        (v as usize % self.base_n) as VertexId
    }

    /// Vertex ids of copy `i`.
    pub fn copy_vertices(&self, i: usize) -> std::ops::Range<u32> {
        let lo = (i * self.base_n) as u32;
        lo..lo + self.base_n as u32
    }
}

/// Build `copies` disjoint copies of `(base, base_costs)`.
pub fn disjoint_copies(base: &Graph, base_costs: &[f64], copies: usize) -> DisjointUnion {
    assert!(copies >= 1, "need at least one copy");
    assert_eq!(
        base_costs.len(),
        base.num_edges(),
        "cost vector length mismatch"
    );
    let n0 = base.num_vertices();
    let mut builder = GraphBuilder::new(n0 * copies);
    // Costs keyed by canonical endpoints so they survive the builder's
    // sort+dedup (the base graph has no duplicates, so neither does the
    // union).
    let mut keyed: Vec<((u32, u32), f64)> = Vec::with_capacity(base.num_edges() * copies);
    for i in 0..copies {
        let off = (i * n0) as u32;
        for (e, &(u, v)) in base.edge_list().iter().enumerate() {
            builder.add_edge(u + off, v + off);
            keyed.push(((u + off, v + off), base_costs[e]));
        }
    }
    keyed.sort_unstable_by_key(|&(k, _)| k);
    let graph = builder.build();
    debug_assert_eq!(graph.num_edges(), keyed.len());
    debug_assert!(graph
        .edge_list()
        .iter()
        .zip(&keyed)
        .all(|(&ab, &(k, _))| ab == k));
    let costs = keyed.into_iter().map(|(_, c)| c).collect();
    DisjointUnion {
        graph,
        costs,
        copies,
        base_n: n0,
    }
}

/// Replicate a per-vertex measure (e.g. weights `w`) of the base graph
/// across all copies: `w̃(v^{(i)}) = w(v)`.
pub fn replicate_measure(base_measure: &[f64], copies: usize) -> Vec<f64> {
    let mut out = Vec::with_capacity(base_measure.len() * copies);
    for _ in 0..copies {
        out.extend_from_slice(base_measure);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::graph_from_edges;

    #[test]
    fn copies_structure() {
        let base = graph_from_edges(3, &[(0, 1), (1, 2)]);
        let costs = vec![1.0, 2.0];
        let u = disjoint_copies(&base, &costs, 3);
        assert_eq!(u.graph.num_vertices(), 9);
        assert_eq!(u.graph.num_edges(), 6);
        assert_eq!(u.graph.components().1, 3);
        assert_eq!(u.copy_of(7), 2);
        assert_eq!(u.base_vertex(7), 1);
        assert_eq!(u.copy_vertices(1), 3..6);
    }

    #[test]
    fn costs_replicated_correctly() {
        let base = graph_from_edges(3, &[(0, 1), (1, 2)]);
        let costs = vec![1.5, 2.5];
        let u = disjoint_copies(&base, &costs, 2);
        // Every edge of the union must carry the cost of its base edge.
        for (e, &(a, b)) in u.graph.edge_list().iter().enumerate() {
            let (ba, bb) = (u.base_vertex(a), u.base_vertex(b));
            let base_cost = if (ba, bb) == (0, 1) || (ba, bb) == (1, 0) {
                1.5
            } else {
                2.5
            };
            assert_eq!(u.costs[e], base_cost);
        }
    }

    #[test]
    fn measures_replicated() {
        let w = vec![1.0, 2.0, 3.0];
        let r = replicate_measure(&w, 2);
        assert_eq!(r, vec![1.0, 2.0, 3.0, 1.0, 2.0, 3.0]);
    }
}
