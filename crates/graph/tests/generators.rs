//! Property tests for the corpus generator families.
//!
//! Three invariant groups per family:
//!
//! * **seed determinism** — the same seed yields a bit-identical graph
//!   (edge lists compare exactly; the experiment harness depends on it);
//! * **shape invariants** — edge counts, degree bounds, connectivity;
//! * **structure-detection guards** — `recognize` must accept hypercubes
//!   (they *are* `[0,2)^d` lattices, and the reconstructed embedding must
//!   verify) and must *not* classify tori, rewired rings, or
//!   planted-partition blobs as grid paths/lattices unless they truly
//!   embed — a false "grid" verdict would hand GridSplit broken geometry.

use mmb_graph::gen::attachment::preferential_attachment;
use mmb_graph::gen::community::planted_partition;
use mmb_graph::gen::geometric::random_geometric;
use mmb_graph::gen::lattice::{hypercube, torus};
use mmb_graph::gen::smallworld::watts_strogatz;
use mmb_graph::recognize::{recognize, Structure};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn preferential_attachment_invariants(
        n in 2usize..120,
        attach in 1usize..4,
        seed in any::<u64>(),
    ) {
        let g = preferential_attachment(n, attach, seed);
        let h = preferential_attachment(n, attach, seed);
        prop_assert_eq!(g.edge_list(), h.edge_list(), "seed determinism");
        let expect: usize = (0..n).map(|i| attach.min(i)).sum();
        prop_assert_eq!(g.num_edges(), expect);
        prop_assert!(g.is_connected());
    }

    #[test]
    fn random_geometric_invariants(
        n in 1usize..80,
        r in 0.05f64..0.6,
        seed in any::<u64>(),
    ) {
        let a = random_geometric(n, r, seed);
        let b = random_geometric(n, r, seed);
        prop_assert_eq!(a.graph.edge_list(), b.graph.edge_list());
        prop_assert_eq!(&a.points, &b.points);
        // Edge ⟺ distance ≤ r, for every pair.
        let r2 = r * r;
        for u in 0..n as u32 {
            for v in u + 1..n as u32 {
                let dx = a.points[u as usize][0] - a.points[v as usize][0];
                let dy = a.points[u as usize][1] - a.points[v as usize][1];
                prop_assert_eq!(a.graph.has_edge(u, v), dx * dx + dy * dy <= r2);
            }
        }
    }

    #[test]
    fn watts_strogatz_invariants(
        n in 7usize..120,
        k_half in 1usize..3,
        beta in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        let g = watts_strogatz(n, k_half, beta, seed);
        let h = watts_strogatz(n, k_half, beta, seed);
        prop_assert_eq!(g.edge_list(), h.edge_list());
        // Rewiring preserves the edge count exactly.
        prop_assert_eq!(g.num_edges(), n * k_half);
        prop_assert!(g.max_degree() >= k_half, "every rewire keeps an endpoint");
    }

    #[test]
    fn planted_partition_invariants(
        n in 8usize..90,
        groups in 2usize..5,
        seed in any::<u64>(),
    ) {
        let pp = planted_partition(n, groups, 0.7, 0.05, seed);
        let qq = planted_partition(n, groups, 0.7, 0.05, seed);
        prop_assert_eq!(pp.graph.edge_list(), qq.graph.edge_list());
        prop_assert_eq!(&pp.communities, &qq.communities);
        // Communities partition the vertices into near-equal blocks.
        let mut sizes = vec![0usize; groups];
        for &c in &pp.communities {
            sizes[c as usize] += 1;
        }
        let (lo, hi) = (n / groups, n.div_ceil(groups));
        prop_assert!(sizes.iter().all(|&s| (lo..=hi).contains(&s)), "{:?}", sizes);
        prop_assert!(pp.ground_truth().is_total());
    }

    #[test]
    fn tori_never_classify_as_grids_unless_they_truly_embed(
        a in 3usize..7,
        b in 3usize..7,
    ) {
        // A torus embeds in a box lattice iff every factor cycle does:
        // C₄ ≅ Q₂ (the 2×2 box), so torus[4,4] ≅ Q₄ genuinely *is* a
        // grid — every other extent in 3..7 yields an odd cycle (3, 5)
        // or a graph no degree-argument-compatible box can host (6), so
        // a "grid" (or "path") verdict would be a soundness bug.
        let g = torus(&[a, b]);
        let s = recognize(&g);
        if a == 4 && b == 4 {
            prop_assert_eq!(s.name(), "grid", "torus [4,4] is Q4");
        } else {
            prop_assert_eq!(s.name(), "arbitrary", "torus [{}, {}]", a, b);
        }
    }
}

#[test]
fn hypercubes_truly_embed_and_are_recognized() {
    for d in 2..=5usize {
        let g = hypercube(d);
        match recognize(&g) {
            Structure::Grid(found) => {
                // The reconstructed embedding must be a verified grid
                // embedding of the same graph under the same ids.
                assert_eq!(found.dim, d, "Q_{d} embeds as [0,2)^{d}");
                for &(u, v) in g.edge_list() {
                    let dist: i64 = found
                        .coord(u)
                        .iter()
                        .zip(found.coord(v))
                        .map(|(x, y)| (x - y).abs())
                        .sum();
                    assert_eq!(dist, 1, "Q_{d} edge {u}-{v}");
                }
            }
            s => panic!("hypercube Q_{d} classified as {}", s.name()),
        }
    }
}

#[test]
fn degenerate_tori_that_do_embed_are_fair_game() {
    // torus([2,2]) is the 4-cycle = the 2×2 lattice; torus([2,2,2]) is
    // Q₃. These *truly embed*, so a "grid" verdict is correct.
    assert_eq!(recognize(&torus(&[2, 2])).name(), "grid");
    assert_eq!(recognize(&torus(&[2, 2, 2])).name(), "grid");
    // A 1×n torus is the n-cycle: not a lattice for n ≥ 5 (C₄ is).
    assert_eq!(recognize(&torus(&[1, 5])).name(), "arbitrary");
    assert_eq!(recognize(&torus(&[1, 4])).name(), "grid");
}

#[test]
fn attachment_trees_are_recognized_as_forests() {
    // attach = 1 produces a tree: the auto-splitter must see a forest,
    // not fall back to BFS.
    let g = preferential_attachment(40, 1, 9);
    assert_eq!(recognize(&g).name(), "forest");
}

#[test]
fn rewired_rings_are_not_paths() {
    // A ring (beta = 0, k_half = 1) is a cycle — degree ≤ 2 everywhere
    // but *not* a union of paths; recognition must not call it one.
    let ring = watts_strogatz(12, 1, 0.0, 0);
    assert_eq!(recognize(&ring).name(), "arbitrary");
    // Heavier rewiring leaves an arbitrary graph too (n = 12 keeps the
    // chance of accidentally producing a path negligible but the check
    // exact: max degree > 2 or a cycle survives).
    let rewired = watts_strogatz(12, 2, 0.5, 3);
    assert_eq!(recognize(&rewired).name(), "arbitrary");
}

#[test]
fn planted_partitions_are_not_misclassified_as_lattices() {
    for seed in 0..4 {
        let pp = planted_partition(36, 3, 0.6, 0.05, seed);
        let s = recognize(&pp.graph);
        assert_ne!(s.name(), "grid", "seed {seed}");
        assert_ne!(s.name(), "path", "seed {seed}");
    }
}

#[test]
fn different_seeds_differ() {
    assert_ne!(
        preferential_attachment(60, 2, 1).edge_list(),
        preferential_attachment(60, 2, 2).edge_list()
    );
    assert_ne!(
        watts_strogatz(60, 2, 0.3, 1).edge_list(),
        watts_strogatz(60, 2, 0.3, 2).edge_list()
    );
    assert_ne!(
        random_geometric(60, 0.2, 1).points,
        random_geometric(60, 0.2, 2).points
    );
    assert_ne!(
        planted_partition(60, 3, 0.5, 0.05, 1).graph.edge_list(),
        planted_partition(60, 3, 0.5, 0.05, 2).graph.edge_list()
    );
}
