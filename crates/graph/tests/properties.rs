//! Property-based tests for the graph substrate.

use mmb_graph::cut::{boundary_cost, boundary_cost_within, boundary_measure};
use mmb_graph::gen::grid::GridGraph;
use mmb_graph::graph::{graph_from_edges, GraphBuilder};
use mmb_graph::measure::{edge_norm_p, edge_norm_p_pow, norm_1, norm_inf, norm_p, pow_p, set_sum};
use mmb_graph::union::{disjoint_copies, replicate_measure};
use mmb_graph::{Coloring, VertexSet};
use proptest::prelude::*;

/// Strategy: a random graph on `n ≤ 24` vertices as an edge probability mask.
fn arb_graph() -> impl Strategy<Value = mmb_graph::Graph> {
    (2usize..24, any::<u64>()).prop_map(|(n, seed)| {
        let mut b = GraphBuilder::new(n);
        // Cheap deterministic pseudo-random edge selection.
        let mut state = seed | 1;
        for u in 0..n as u32 {
            for v in u + 1..n as u32 {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                if state >> 33 & 3 == 0 {
                    b.add_edge(u, v);
                }
            }
        }
        b.build()
    })
}

proptest! {
    #[test]
    fn boundary_of_complement_matches(g in arb_graph(), seed in any::<u64>()) {
        let n = g.num_vertices();
        let costs: Vec<f64> = (0..g.num_edges()).map(|e| 1.0 + (seed.wrapping_add(e as u64) % 7) as f64).collect();
        let members = (0..n as u32).filter(|v| (seed >> (v % 63)) & 1 == 1);
        let u: VertexSet = VertexSet::from_iter(n, members);
        let mut comp = VertexSet::full(n);
        comp.difference_with(&u);
        // δ(U) = δ(V \ U).
        prop_assert!((boundary_cost(&g, &costs, &u) - boundary_cost(&g, &costs, &comp)).abs() < 1e-9);
    }

    #[test]
    fn boundary_within_never_exceeds_host_boundary(g in arb_graph(), seed in any::<u64>()) {
        let n = g.num_vertices();
        let costs: Vec<f64> = vec![1.0; g.num_edges()];
        let u = VertexSet::from_iter(n, (0..n as u32).filter(|v| (seed >> (v % 61)) & 1 == 1));
        let w = VertexSet::from_iter(n, (0..n as u32).filter(|v| (seed >> (v % 53)) & 1 == 1 || u.contains(*v)));
        prop_assert!(boundary_cost_within(&g, &costs, &w, &u) <= boundary_cost(&g, &costs, &u) + 1e-9);
    }

    #[test]
    fn boundary_measure_total_is_twice_boundary(g in arb_graph(), seed in any::<u64>()) {
        let n = g.num_vertices();
        let costs: Vec<f64> = (0..g.num_edges()).map(|e| 0.5 + (e as f64 % 5.0)).collect();
        let u = VertexSet::from_iter(n, (0..n as u32).filter(|v| (seed >> (v % 59)) & 1 == 1));
        let m = boundary_measure(&g, &costs, &u);
        let total: f64 = m.iter().sum();
        prop_assert!((total - 2.0 * boundary_cost(&g, &costs, &u)).abs() < 1e-9);
    }

    #[test]
    fn class_boundaries_sum_to_twice_cut_cost(g in arb_graph(), k in 2usize..5, seed in any::<u64>()) {
        let n = g.num_vertices();
        let costs: Vec<f64> = vec![1.0; g.num_edges()];
        let chi = Coloring::from_fn(n, k, |v| ((seed >> (v % 31)) % k as u64) as u32);
        let per_class = chi.boundary_costs(&g, &costs);
        let bichromatic: f64 = g.edge_list().iter().enumerate()
            .filter(|(_, (a, b))| chi.get(*a) != chi.get(*b))
            .map(|(e, _)| costs[e])
            .sum();
        prop_assert!((norm_1(&per_class) - 2.0 * bichromatic).abs() < 1e-9);
    }

    #[test]
    fn p_norm_bounds(v in proptest::collection::vec(0.0f64..50.0, 0..20), p in 1.0f64..6.0) {
        let np = norm_p(&v, p);
        prop_assert!(np <= norm_1(&v) + 1e-9);
        prop_assert!(np >= norm_inf(&v) - 1e-9);
    }

    #[test]
    fn pow_p_fast_paths_agree_with_powf(x in 0.0f64..1e6, pi in 1usize..7) {
        // The fast paths (identity, x·x, powi) must agree with the plain
        // powf reference to 1e-12 relative error on every exponent class.
        for p in [1.0, 2.0, 3.0, 7.0, 32.0, 1.5, 2.5, pi as f64, pi as f64 + 0.25] {
            let fast = pow_p(x, p);
            let reference = x.powf(p);
            let scale = reference.abs().max(1.0);
            prop_assert!(
                (fast - reference).abs() <= 1e-12 * scale,
                "x={x}, p={p}: fast {fast} vs powf {reference}"
            );
        }
    }

    #[test]
    fn norm_p_fast_paths_agree_with_powf_path(
        v in proptest::collection::vec(0.0f64..1e4, 0..24),
    ) {
        // norm_p routes element powers through pow_p; compare against an
        // explicit powf-only evaluation (same max-scaling) on the fast-path
        // exponents.
        for p in [1.0f64, 2.0, 3.0, 5.0] {
            let fast = norm_p(&v, p);
            let m = norm_inf(&v);
            let reference = if m == 0.0 {
                0.0
            } else {
                m * v.iter().map(|&x| (x / m).powf(p)).sum::<f64>().powf(1.0 / p)
            };
            let scale = reference.abs().max(1.0);
            prop_assert!(
                (fast - reference).abs() <= 1e-12 * scale,
                "p={p}: fast {fast} vs powf {reference}"
            );
        }
    }

    #[test]
    fn edge_norm_p_pow_fast_paths_agree_with_powf_path(g in arb_graph(), seed in any::<u64>()) {
        let n = g.num_vertices();
        let costs: Vec<f64> = (0..g.num_edges())
            .map(|e| 0.25 + ((seed.wrapping_add(e as u64 * 77)) % 13) as f64)
            .collect();
        let w = VertexSet::from_iter(n, (0..n as u32).filter(|v| (seed >> (v % 43)) & 1 == 1));
        for p in [1.0f64, 2.0, 4.0] {
            let fast = edge_norm_p_pow(&g, &costs, &w, p);
            let mut reference = 0.0f64;
            for v in w.iter() {
                for &(nb, e) in g.neighbors(v) {
                    if nb > v && w.contains(nb) {
                        reference += costs[e as usize].powf(p);
                    }
                }
            }
            let scale = reference.abs().max(1.0);
            prop_assert!(
                (fast - reference).abs() <= 1e-12 * scale,
                "p={p}: fast {fast} vs powf {reference}"
            );
        }
    }

    #[test]
    fn edge_norm_is_monotone_in_subset(g in arb_graph(), seed in any::<u64>(), p in 1.0f64..4.0) {
        let n = g.num_vertices();
        let costs: Vec<f64> = (0..g.num_edges()).map(|e| 1.0 + (e % 3) as f64).collect();
        let small = VertexSet::from_iter(n, (0..n as u32).filter(|v| (seed >> (v % 47)) & 1 == 1));
        let big = VertexSet::full(n);
        prop_assert!(edge_norm_p(&g, &costs, &small, p) <= edge_norm_p(&g, &costs, &big, p) + 1e-9);
    }

    #[test]
    fn vertex_set_roundtrip(ids in proptest::collection::btree_set(0u32..200, 0..100)) {
        let s = VertexSet::from_iter(200, ids.iter().copied());
        prop_assert_eq!(s.len(), ids.len());
        let back: Vec<u32> = s.iter().collect();
        let expect: Vec<u32> = ids.into_iter().collect();
        prop_assert_eq!(back, expect);
    }

    #[test]
    fn disjoint_union_preserves_norms(copies in 1usize..5) {
        let base = graph_from_edges(4, &[(0,1),(1,2),(2,3),(0,3)]);
        let costs = vec![1.0, 2.0, 3.0, 4.0];
        let u = disjoint_copies(&base, &costs, copies);
        // ‖c̃‖_p^p = copies · ‖c‖_p^p.
        let p = 2.0;
        let base_pow: f64 = costs.iter().map(|c| c.powf(p)).sum();
        let union_pow: f64 = u.costs.iter().map(|c| c.powf(p)).sum();
        prop_assert!((union_pow - copies as f64 * base_pow).abs() < 1e-9);
        let w = vec![1.0, 5.0, 2.0, 7.0];
        let wt = replicate_measure(&w, copies);
        prop_assert!((norm_1(&wt) - copies as f64 * norm_1(&w)).abs() < 1e-9);
        prop_assert_eq!(norm_inf(&wt), norm_inf(&w));
    }

    #[test]
    fn grid_from_points_degree_bound(n in 1usize..60, seed in any::<u64>()) {
        let g = GridGraph::random_blob(2, n, seed);
        // 2D grid graphs have maximum degree ≤ 2d = 4.
        prop_assert!(g.graph.max_degree() <= 4);
        prop_assert!(g.graph.is_connected());
    }

    #[test]
    fn strict_balance_defect_scale_invariant(scale in 0.001f64..1000.0) {
        let w = vec![4.0, 1.0, 2.0, 3.0, 5.0, 5.0];
        let ws: Vec<f64> = w.iter().map(|x| x * scale).collect();
        let chi = Coloring::from_vec(3, vec![0, 0, 1, 1, 2, 2]);
        let b1 = chi.is_strictly_balanced(&w);
        let b2 = chi.is_strictly_balanced(&ws);
        prop_assert_eq!(b1, b2);
    }

    #[test]
    fn set_sum_splits_additively(seed in any::<u64>()) {
        let phi: Vec<f64> = (0..50).map(|i| (i % 7) as f64 + 0.5).collect();
        let a = VertexSet::from_iter(50, (0..50u32).filter(|v| (seed >> (v % 41)) & 1 == 1));
        let full = VertexSet::full(50);
        let b = full.difference(&a);
        prop_assert!((set_sum(&phi, &a) + set_sum(&phi, &b) - norm_1(&phi)).abs() < 1e-9);
    }
}
