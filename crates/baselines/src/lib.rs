//! # mmb-baselines
//!
//! Baseline partitioners the paper's introduction compares against:
//!
//! * [`greedy`] — bin-packing heuristics (first-fit, LPT, round-robin):
//!   excellent weight balance (LPT even satisfies eq. (1)), but completely
//!   boundary-blind — the paper's running example of why balance alone is
//!   not enough.
//! * [`recursive_bisection`] — Simon–Teng-style recursive bisection driven
//!   by a [`Splitter`](mmb_splitters::Splitter): good *average* boundary
//!   cost, loose (factor-style) balance, no per-part boundary guarantee. A
//!   two-measure variant folds the cost-degree `τ` into the bisection
//!   weights, approximating the Kiwi–Spielman–Teng recipe of balancing
//!   weight and boundary simultaneously.
//! * [`kl`] — Kernighan–Lin-style local refinement of the maximum boundary
//!   under a balance envelope; the standard engineering post-pass.
//! * [`multilevel`] — a METIS-lite multilevel partitioner: heavy-edge
//!   matching coarsening, recursive bisection on the coarsest graph, and
//!   KL refinement during uncoarsening.
//!
//! All baselines produce total [`Coloring`](mmb_graph::Coloring)s so the
//! harness can score everything uniformly.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod greedy;
pub mod kl;
pub mod multilevel;
pub mod recursive_bisection;
