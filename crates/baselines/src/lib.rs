//! # mmb-baselines
//!
//! Baseline partitioners the paper's introduction compares against:
//!
//! * [`greedy`] — bin-packing heuristics (first-fit, LPT, round-robin):
//!   excellent weight balance (LPT even satisfies eq. (1)), but completely
//!   boundary-blind — the paper's running example of why balance alone is
//!   not enough.
//! * [`recursive_bisection`] — Simon–Teng-style recursive bisection driven
//!   by a [`Splitter`](mmb_splitters::Splitter): good *average* boundary
//!   cost, loose (factor-style) balance, no per-part boundary guarantee. A
//!   two-measure variant folds the cost-degree `τ` into the bisection
//!   weights, approximating the Kiwi–Spielman–Teng recipe of balancing
//!   weight and boundary simultaneously.
//! * [`kl`] — Kernighan–Lin-style local refinement of the maximum boundary
//!   under a balance envelope; the standard engineering post-pass.
//! * [`multilevel`] — a METIS-lite multilevel partitioner: heavy-edge
//!   matching coarsening, recursive bisection on the coarsest graph, and
//!   KL refinement during uncoarsening.
//!
//! All baselines produce total [`Coloring`](mmb_graph::Coloring)s so the
//! harness can score everything uniformly.
//!
//! ## The `Partitioner` interface
//!
//! Every baseline also implements
//! [`Partitioner`](mmb_core::api::Partitioner) — the workspace-wide
//! "instance in, coloring out" trait shared with the Theorem 4 pipeline
//! ([`Theorem4Pipeline`](mmb_core::api::Theorem4Pipeline)) — via the
//! adapter types [`greedy::FirstFit`], [`greedy::Lpt`],
//! [`greedy::RoundRobin`], [`recursive_bisection::RecursiveBisection`],
//! and [`multilevel::Multilevel`]. That lets the experiment harness
//! iterate `&[&dyn Partitioner]` over ours-plus-baselines uniformly
//! (experiments E4, E7, E10):
//!
//! ```
//! use mmb_baselines::greedy::Lpt;
//! use mmb_baselines::multilevel::Multilevel;
//! use mmb_core::api::{Instance, Partitioner, Theorem4Pipeline};
//! use mmb_graph::gen::grid::GridGraph;
//!
//! let grid = GridGraph::lattice(&[8, 8]);
//! let (n, m) = (grid.graph.num_vertices(), grid.graph.num_edges());
//! let inst = Instance::from_grid(grid, vec![1.0; m], vec![1.0; n])?;
//! let algos: [&dyn Partitioner; 3] =
//!     [&Theorem4Pipeline::default(), &Lpt, &Multilevel::default()];
//! for algo in algos {
//!     let chi = algo.partition(&inst, 4)?;
//!     assert!(chi.is_total());
//! }
//! # Ok::<(), mmb_core::api::SolveError>(())
//! ```
//!
//! All entry points validate their inputs and return
//! `Result<_, `[`SolveError`](mmb_core::api::SolveError)`>` instead of
//! panicking on malformed data.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod greedy;
pub mod kl;
pub mod multilevel;
pub mod recursive_bisection;
pub mod rung;
