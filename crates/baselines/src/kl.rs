//! Kernighan–Lin-style k-way local refinement (re-export).
//!
//! The implementation lives in [`mod@mmb_core::refine`]: it moved into the
//! core crate when the coarsening cascade made per-level refinement part
//! of the pipeline's own uncoarsening path. This module re-exports it
//! unchanged so existing `mmb_baselines::kl` callers keep working.

pub use mmb_core::refine::{refine, KlParams};
