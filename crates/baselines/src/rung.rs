//! Fallible rung adapters: wrap any baseline [`Partitioner`] so it can
//! serve as a **custom rung** of the resilient degradation ladder
//! ([`mmb_core::resilient::ResilientSolver`]).
//!
//! The ladder's contract is *valid-or-typed-error*: a rung must either
//! return a strictly balanced total coloring or fail with a
//! [`SolveError`] — it must never hand back a plausible-looking coloring
//! that silently violates eq. (1). Most baselines are honest about this
//! (recursive bisection and multilevel only promise factor-style
//! balance), so the adapters here make the contract explicit:
//!
//! * [`StrictRung`] post-checks strict balance and converts a violation
//!   into [`SolveError::NotStrict`] — the inner baseline's output is
//!   *rejected at the rung*, typed, instead of being served.
//! * [`FlakyRung`] (test helper) fails transiently for a configurable
//!   number of leading calls — how the retry-with-backoff machinery is
//!   exercised without failpoints.

use std::sync::atomic::{AtomicU64, Ordering};

use mmb_core::api::{Instance, Partitioner, SolveError};
use mmb_graph::Coloring;

/// Wraps a partitioner and enforces the ladder's serving contract: the
/// inner output must be total and strictly balanced (eq. (1)), else the
/// call fails with a typed [`SolveError::NotStrict`].
pub struct StrictRung<P> {
    inner: P,
    name: String,
}

impl<P: Partitioner> StrictRung<P> {
    /// Wrap `inner`; the rung reports as `"strict(<inner name>)"`.
    pub fn new(inner: P) -> Self {
        let name = format!("strict({})", inner.name());
        StrictRung { inner, name }
    }
}

impl<P: Partitioner> Partitioner for StrictRung<P> {
    fn name(&self) -> &str {
        &self.name
    }

    fn partition(&self, inst: &Instance, k: usize) -> Result<Coloring, SolveError> {
        let chi = self.inner.partition(inst, k)?;
        if !chi.is_total() {
            // A partial coloring has no meaningful defect; report the
            // whole slack as violated.
            return Err(SolveError::NotStrict {
                defect: f64::INFINITY,
            });
        }
        let defect = chi.strict_balance_defect(inst.weights());
        if !chi.is_strictly_balanced(inst.weights()) {
            return Err(SolveError::NotStrict { defect });
        }
        Ok(chi)
    }
}

/// A rung that fails with [`SolveError::Transient`] for the first
/// `failures` calls, then delegates — deterministic fuel for
/// retry-with-backoff tests (the failure count, not wall clock, drives
/// it).
pub struct FlakyRung<P> {
    inner: P,
    remaining: AtomicU64,
}

impl<P: Partitioner> FlakyRung<P> {
    /// Fail the first `failures` `partition` calls, then behave as
    /// `inner`.
    pub fn new(inner: P, failures: u64) -> Self {
        FlakyRung {
            inner,
            remaining: AtomicU64::new(failures),
        }
    }
}

impl<P: Partitioner> Partitioner for FlakyRung<P> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn partition(&self, inst: &Instance, k: usize) -> Result<Coloring, SolveError> {
        // fetch_update instead of load+store: partition may be called
        // from several harness threads at once.
        let fail = self
            .remaining
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |r| r.checked_sub(1))
            .is_ok();
        if fail {
            return Err(SolveError::Transient {
                site: "rung::flaky",
            });
        }
        self.inner.partition(inst, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::Lpt;
    use crate::recursive_bisection::RecursiveBisection;
    use mmb_graph::gen::misc::path;

    fn skewed_instance(n: usize) -> Instance {
        let g = path(n);
        let m = g.num_edges();
        // Geometric weights: recursive bisection's factor balance
        // misses eq. (1) here, LPT holds it.
        let weights = (0..n).map(|i| 1.5f64.powi(i as i32)).collect();
        Instance::new(g, vec![1.0; m], weights).unwrap()
    }

    #[test]
    fn strict_rung_passes_strict_inner_output_through() {
        let inst = skewed_instance(12);
        let rung = StrictRung::new(Lpt);
        let chi = rung.partition(&inst, 3).unwrap();
        assert!(chi.is_strictly_balanced(inst.weights()));
        assert_eq!(rung.name(), "strict(greedy LPT)");
    }

    /// Colors everything class 0 — the worst legal-looking output a
    /// buggy rung could hand the ladder.
    struct Lopsided;
    impl Partitioner for Lopsided {
        fn name(&self) -> &str {
            "lopsided"
        }
        fn partition(&self, inst: &Instance, k: usize) -> Result<Coloring, SolveError> {
            Ok(Coloring::from_fn(inst.num_vertices(), k, |_| 0))
        }
    }

    #[test]
    fn strict_rung_rejects_non_strict_output_with_a_typed_error() {
        let inst = skewed_instance(14);
        let rung = StrictRung::new(Lopsided);
        match rung.partition(&inst, 3) {
            Err(SolveError::NotStrict { defect }) => assert!(defect > 0.0),
            other => panic!("expected NotStrict, got {other:?}"),
        }
        // The honest baselines survive wrapping whenever their output
        // really is strict: factor-balanced recursive bisection either
        // serves a strict coloring or is typed-rejected — never a silent
        // eq. (1) violation.
        let wrapped = StrictRung::new(RecursiveBisection::default());
        match wrapped.partition(&inst, 3) {
            Ok(chi) => assert!(chi.is_strictly_balanced(inst.weights())),
            Err(SolveError::NotStrict { defect }) => assert!(defect > 0.0),
            Err(other) => panic!("unexpected error class: {other:?}"),
        }
    }

    #[test]
    fn flaky_rung_recovers_after_its_budget_of_failures() {
        let inst = skewed_instance(10);
        let rung = FlakyRung::new(Lpt, 2);
        assert!(matches!(
            rung.partition(&inst, 2),
            Err(SolveError::Transient { .. })
        ));
        assert!(matches!(
            rung.partition(&inst, 2),
            Err(SolveError::Transient { .. })
        ));
        let chi = rung.partition(&inst, 2).unwrap();
        assert!(chi.is_strictly_balanced(inst.weights()));
    }
}
