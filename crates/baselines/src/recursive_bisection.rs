//! Recursive bisection (Simon–Teng \[8\]) and a two-measure
//! Kiwi–Spielman–Teng-style variant \[4\].
//!
//! Plain recursive bisection splits the vertex set by weight into
//! `⌊k/2⌋ : ⌈k/2⌉` proportions, recursing on both halves with their color
//! ranges. With a quality splitter it achieves small *total/average*
//! boundary cost, but per-part weights only balance up to constant factors
//! and no single part's boundary is controlled — the two gaps Theorem 4
//! closes.
//!
//! The KST-style variant biases each bisection with the cost-degree
//! measure `τ(v) = c(δ(v))`, approximating their idea of separators that
//! divide evenly with respect to both weight and boundary mass (their
//! approach handles at most two measures — see the paper's §1 discussion).
//!
//! [`RecursiveBisection`] is the [`Partitioner`] adapter; it drives the
//! bisection with the instance's automatically selected splitter
//! ([`mmb_core::api::auto_splitter`]).

use mmb_core::api::{
    auto_splitter, validate_costs, validate_weights, Instance, Partitioner, SolveError,
};
use mmb_graph::measure::{cost_degree_measure, norm_1, set_sum};
use mmb_graph::{Coloring, Graph, VertexSet};
use mmb_splitters::Splitter;

fn validate(g: &Graph, weights: &[f64], k: usize) -> Result<(), SolveError> {
    if k == 0 {
        return Err(SolveError::ZeroColors);
    }
    validate_weights(g.num_vertices(), weights)?;
    Ok(())
}

/// Simon–Teng recursive bisection by vertex weight.
pub fn recursive_bisection<S: Splitter + ?Sized>(
    g: &Graph,
    splitter: &S,
    weights: &[f64],
    k: usize,
) -> Result<Coloring, SolveError> {
    validate(g, weights, k)?;
    let mut chi = Coloring::new_uncolored(g.num_vertices(), k);
    for (color, part) in bisect(splitter, VertexSet::full(g.num_vertices()), weights, 0, k) {
        for v in part.iter() {
            chi.set(v, color as u32);
        }
    }
    Ok(chi)
}

/// KST-style bisection: each split balances `w + η·τ` where
/// `η = ‖w‖₁ / ‖τ‖₁` equalizes the two measures' scales.
pub fn recursive_bisection_kst<S: Splitter + ?Sized>(
    g: &Graph,
    costs: &[f64],
    splitter: &S,
    weights: &[f64],
    k: usize,
) -> Result<Coloring, SolveError> {
    validate(g, weights, k)?;
    validate_costs(g.num_edges(), costs)?;
    let tau = cost_degree_measure(g, costs);
    let tau_total = norm_1(&tau);
    let eta = if tau_total > 0.0 {
        norm_1(weights) / tau_total
    } else {
        0.0
    };
    let mixed: Vec<f64> = weights.iter().zip(&tau).map(|(w, t)| w + eta * t).collect();
    let mut chi = Coloring::new_uncolored(g.num_vertices(), k);
    for (color, part) in bisect(splitter, VertexSet::full(g.num_vertices()), &mixed, 0, k) {
        for v in part.iter() {
            chi.set(v, color as u32);
        }
    }
    Ok(chi)
}

/// Recursively bisect `set`, returning the `(color, part)` leaves.
///
/// The two halves of a bisection are independent, so they run through
/// [`rayon::join`]; the leaf list is assembled left-before-right, making
/// the result identical to the sequential recursion for any thread count.
fn bisect<S: Splitter + ?Sized>(
    splitter: &S,
    set: VertexSet,
    weights: &[f64],
    color_lo: usize,
    colors: usize,
) -> Vec<(usize, VertexSet)> {
    if colors == 1 {
        return vec![(color_lo, set)];
    }
    let k1 = colors / 2;
    let total = set_sum(weights, &set);
    let target = total * k1 as f64 / colors as f64;
    let u = splitter.split(&set, weights, target);
    let rest = set.difference(&u);
    // Workers are fresh threads; carry the caller's thread-local scratch
    // mode into both branches.
    let mode = mmb_graph::workspace::scratch_mode();
    let (mut left, right) = rayon::join(
        || {
            mmb_graph::workspace::with_scratch_mode(mode, || {
                bisect(splitter, u, weights, color_lo, k1)
            })
        },
        || {
            mmb_graph::workspace::with_scratch_mode(mode, || {
                bisect(splitter, rest, weights, color_lo + k1, colors - k1)
            })
        },
    );
    left.extend(right);
    left
}

/// Recursive bisection as a [`Partitioner`], driven by the instance's
/// auto-selected splitter; `kst` switches on the two-measure variant.
#[derive(Clone, Copy, Debug, Default)]
pub struct RecursiveBisection {
    /// Fold the cost-degree `τ` into the bisection weights (KST-style).
    pub kst: bool,
}

impl Partitioner for RecursiveBisection {
    fn name(&self) -> &str {
        if self.kst {
            "RB + KST measure"
        } else {
            "rec. bisection"
        }
    }

    fn partition(&self, inst: &Instance, k: usize) -> Result<Coloring, SolveError> {
        let (splitter, _) = auto_splitter(inst);
        if self.kst {
            recursive_bisection_kst(inst.graph(), inst.costs(), &splitter, inst.weights(), k)
        } else {
            recursive_bisection(inst.graph(), &splitter, inst.weights(), k)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmb_core::api::InstanceError;
    use mmb_graph::gen::grid::GridGraph;
    use mmb_graph::measure::norm_inf;
    use mmb_splitters::grid::GridSplitter;

    #[test]
    fn produces_total_rough_partition() {
        let grid = GridGraph::lattice(&[16, 16]);
        let n = grid.graph.num_vertices();
        let costs = vec![1.0; grid.graph.num_edges()];
        let sp = GridSplitter::new(&grid, &costs);
        let weights: Vec<f64> = (0..n).map(|v| 1.0 + (v % 3) as f64).collect();
        for k in [2usize, 3, 5, 8] {
            let chi = recursive_bisection(&grid.graph, &sp, &weights, k).unwrap();
            assert!(chi.is_total(), "k={k}");
            // Roughly balanced: every class ≤ 2× average.
            let cm = chi.class_measures(&weights);
            let avg = norm_1(&weights) / k as f64;
            assert!(
                norm_inf(&cm) <= 2.0 * avg + norm_inf(&weights),
                "k={k}: classes {cm:?}"
            );
        }
    }

    #[test]
    fn boundary_is_geometric_not_catastrophic() {
        // On a 32×32 unit grid with k = 4, RB's total cut should be within
        // a small multiple of the optimal ~3·32 (three straight cuts).
        let grid = GridGraph::lattice(&[32, 32]);
        let n = grid.graph.num_vertices();
        let costs = vec![1.0; grid.graph.num_edges()];
        let sp = GridSplitter::new(&grid, &costs);
        let weights = vec![1.0; n];
        let chi = recursive_bisection(&grid.graph, &sp, &weights, 4).unwrap();
        let total_cut: f64 = chi.boundary_costs(&grid.graph, &costs).iter().sum::<f64>() / 2.0;
        assert!(
            total_cut <= 8.0 * 32.0,
            "RB total cut {total_cut} too large"
        );
    }

    #[test]
    fn kst_variant_also_partitions() {
        let grid = GridGraph::lattice(&[12, 12]);
        let n = grid.graph.num_vertices();
        let costs: Vec<f64> = (0..grid.graph.num_edges())
            .map(|e| 1.0 + (e % 5) as f64)
            .collect();
        let sp = GridSplitter::new(&grid, &costs);
        let weights = vec![1.0; n];
        let chi = recursive_bisection_kst(&grid.graph, &costs, &sp, &weights, 6).unwrap();
        assert!(chi.is_total());
        // Still roughly weight balanced (mixed measure contains w).
        let cm = chi.class_measures(&weights);
        let avg = norm_1(&weights) / 6.0;
        assert!(norm_inf(&cm) <= 3.0 * avg, "classes {cm:?}");
    }

    #[test]
    fn odd_k_splits_proportionally() {
        let grid = GridGraph::lattice(&[9, 9]);
        let n = grid.graph.num_vertices();
        let costs = vec![1.0; grid.graph.num_edges()];
        let sp = GridSplitter::new(&grid, &costs);
        let weights = vec![1.0; n];
        let chi = recursive_bisection(&grid.graph, &sp, &weights, 3).unwrap();
        let cm = chi.class_measures(&weights);
        for c in &cm {
            assert!((c - 27.0).abs() <= 5.0, "classes {cm:?}");
        }
    }

    #[test]
    fn partitioner_adapter_uses_auto_splitter() {
        let grid = GridGraph::lattice(&[12, 12]);
        let n = grid.graph.num_vertices();
        let m = grid.graph.num_edges();
        let inst = Instance::from_grid(grid, vec![1.0; m], vec![1.0; n]).unwrap();
        let chi = RecursiveBisection::default().partition(&inst, 4).unwrap();
        assert!(chi.is_total());
        assert_eq!(
            RecursiveBisection::default()
                .partition(&inst, 0)
                .unwrap_err(),
            SolveError::ZeroColors
        );
    }

    #[test]
    fn malformed_input_is_an_error() {
        let grid = GridGraph::lattice(&[4, 4]);
        let costs = vec![1.0; grid.graph.num_edges()];
        let sp = GridSplitter::new(&grid, &costs);
        assert!(matches!(
            recursive_bisection(&grid.graph, &sp, &[1.0; 3], 2).unwrap_err(),
            SolveError::Instance(InstanceError::WeightLength { .. })
        ));
        assert!(matches!(
            recursive_bisection_kst(&grid.graph, &[1.0; 2], &sp, &[1.0; 16], 2).unwrap_err(),
            SolveError::Instance(InstanceError::CostLength { .. })
        ));
    }
}
