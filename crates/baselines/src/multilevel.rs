//! METIS-lite multilevel partitioner.
//!
//! The workhorse of practical graph partitioning, built here as the
//! strongest engineering baseline:
//!
//! 1. **Coarsening** — heavy-edge matching: repeatedly contract a matching
//!    that prefers expensive edges (so they become internal and can never
//!    be cut), until the graph is small.
//! 2. **Initial partition** — recursive bisection on the coarsest graph
//!    with a BFS splitter.
//! 3. **Uncoarsening** — project the coloring through the contraction maps,
//!    running Kernighan–Lin refinement at every level.
//!
//! The coarsening machinery (matching, contraction, projection) is the
//! shared [`mmb_core::coarsen`] module — this baseline was its original
//! home, and `tests/multilevel_golden.rs` pins the partitioner to its
//! historical colorings bit-for-bit across the move. The same machinery
//! now also drives the pipeline's large-`n` cascade
//! ([`mmb_core::pipeline::CoarsenConfig`]).
//!
//! Compared to the Theorem 4 pipeline it optimizes *total* edge cut with a
//! loose balance envelope; it has no strict-balance and no per-class
//! boundary guarantee (experiment E7 quantifies both gaps).

pub use mmb_core::coarsen::{contract, heavy_edge_matching, CoarsenParams, CoarseningFront};

use mmb_core::api::{validate_costs, validate_weights, Instance, Partitioner, SolveError};
use mmb_graph::{Coloring, Graph};
use mmb_splitters::bfs::BfsSplitter;

use crate::kl::{refine, KlParams};
use crate::recursive_bisection::recursive_bisection;

/// Multilevel parameters.
#[derive(Clone, Copy, Debug)]
pub struct MultilevelParams {
    /// Stop coarsening when the graph has at most `coarsest_factor · k`
    /// vertices.
    pub coarsest_factor: usize,
    /// Maximum number of coarsening levels.
    pub max_levels: usize,
    /// Refinement settings applied per level.
    pub kl: KlParams,
    /// Seed for the matching order.
    pub seed: u64,
}

impl Default for MultilevelParams {
    fn default() -> Self {
        Self {
            coarsest_factor: 8,
            max_levels: 20,
            kl: KlParams::default(),
            seed: 1,
        }
    }
}

/// Partition `(g, costs, weights)` into `k` parts.
pub fn multilevel(
    g: &Graph,
    costs: &[f64],
    weights: &[f64],
    k: usize,
    params: &MultilevelParams,
) -> Result<Coloring, SolveError> {
    if k == 0 {
        return Err(SolveError::ZeroColors);
    }
    validate_weights(g.num_vertices(), weights)?;
    validate_costs(g.num_edges(), costs)?;

    // Coarsening phase, via the shared cascade.
    let coarsen = CoarsenParams {
        target_vertices: params.coarsest_factor * k,
        max_levels: params.max_levels,
        seed: params.seed,
    };
    let front = CoarseningFront::build(g, costs, weights, &coarsen);
    let (cg, cc, cw) = front.coarsest((g, costs, weights));

    // Initial partition on the coarsest graph. The inner calls only see
    // already-validated, internally consistent data, so errors cannot
    // occur here.
    let bfs = BfsSplitter::new(cg);
    let mut chi = recursive_bisection(cg, &bfs, cw, k)?;
    chi = refine(cg, cc, cw, &chi, &params.kl)?;

    // Uncoarsening with per-level refinement.
    front.project_to_host((g, costs, weights), chi, |fg, fc, fw, fine| {
        refine(fg, fc, fw, fine, &params.kl)
    })
}

/// [`multilevel`] as a [`Partitioner`].
#[derive(Clone, Copy, Debug, Default)]
pub struct Multilevel {
    /// Coarsening/refinement parameters applied to every call.
    pub params: MultilevelParams,
}

impl Partitioner for Multilevel {
    fn name(&self) -> &str {
        "multilevel"
    }

    fn partition(&self, inst: &Instance, k: usize) -> Result<Coloring, SolveError> {
        multilevel(inst.graph(), inst.costs(), inst.weights(), k, &self.params)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmb_graph::gen::grid::GridGraph;
    use mmb_graph::measure::{norm_1, norm_inf};

    #[test]
    fn partitions_grid_reasonably() {
        let grid = GridGraph::lattice(&[24, 24]);
        let n = grid.graph.num_vertices();
        let costs = vec![1.0; grid.graph.num_edges()];
        let weights = vec![1.0; n];
        let k = 4;
        let chi = multilevel(
            &grid.graph,
            &costs,
            &weights,
            k,
            &MultilevelParams::default(),
        )
        .unwrap();
        assert!(chi.is_total());
        // Loose balance.
        let cm = chi.class_measures(&weights);
        let avg = norm_1(&weights) / k as f64;
        assert!(norm_inf(&cm) <= 2.0 * avg, "classes {cm:?}");
        // Sane cut: far below cutting everything.
        let total_cut: f64 = chi.boundary_costs(&grid.graph, &costs).iter().sum::<f64>() / 2.0;
        assert!(
            total_cut < grid.graph.num_edges() as f64 / 4.0,
            "cut {total_cut}"
        );
    }

    #[test]
    fn heavy_edges_survive_coarsening() {
        // A grid where one column of edges is enormously expensive: the
        // matching should contract those first, and the final cut should
        // avoid them.
        let grid = GridGraph::lattice(&[16, 16]);
        let mut costs = vec![1.0; grid.graph.num_edges()];
        for (e, &(a, b)) in grid.graph.edge_list().iter().enumerate() {
            let (ca, cb) = (grid.coord(a), grid.coord(b));
            if ca[0] != cb[0] && ca[0].min(cb[0]) == 7 {
                costs[e] = 500.0;
            }
        }
        let n = grid.graph.num_vertices();
        let weights = vec![1.0; n];
        let chi = multilevel(
            &grid.graph,
            &costs,
            &weights,
            2,
            &MultilevelParams::default(),
        )
        .unwrap();
        let cut: f64 = chi.boundary_costs(&grid.graph, &costs).iter().sum::<f64>() / 2.0;
        assert!(
            cut < 500.0,
            "multilevel cut through the expensive column: {cut}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let grid = GridGraph::lattice(&[10, 10]);
        let costs = vec![1.0; grid.graph.num_edges()];
        let weights = vec![1.0; 100];
        let p = MultilevelParams {
            seed: 7,
            ..Default::default()
        };
        let a = multilevel(&grid.graph, &costs, &weights, 3, &p).unwrap();
        let b = multilevel(&grid.graph, &costs, &weights, 3, &p).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn tiny_graph_short_circuit() {
        let grid = GridGraph::lattice(&[2, 2]);
        let costs = vec![1.0; grid.graph.num_edges()];
        let weights = vec![1.0; 4];
        let chi = multilevel(
            &grid.graph,
            &costs,
            &weights,
            2,
            &MultilevelParams::default(),
        )
        .unwrap();
        assert!(chi.is_total());
    }
}
