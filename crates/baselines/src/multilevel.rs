//! METIS-lite multilevel partitioner.
//!
//! The workhorse of practical graph partitioning, built here as the
//! strongest engineering baseline:
//!
//! 1. **Coarsening** — heavy-edge matching: repeatedly contract a matching
//!    that prefers expensive edges (so they become internal and can never
//!    be cut), until the graph is small.
//! 2. **Initial partition** — recursive bisection on the coarsest graph
//!    with a BFS splitter.
//! 3. **Uncoarsening** — project the coloring through the contraction maps,
//!    running Kernighan–Lin refinement at every level.
//!
//! Compared to the Theorem 4 pipeline it optimizes *total* edge cut with a
//! loose balance envelope; it has no strict-balance and no per-class
//! boundary guarantee (experiment E7 quantifies both gaps).

use std::collections::HashMap;

use mmb_core::api::{validate_costs, validate_weights, Instance, Partitioner, SolveError};
use mmb_graph::{Coloring, Graph, GraphBuilder, VertexId};
use mmb_splitters::bfs::BfsSplitter;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::kl::{refine, KlParams};
use crate::recursive_bisection::recursive_bisection;

/// Multilevel parameters.
#[derive(Clone, Copy, Debug)]
pub struct MultilevelParams {
    /// Stop coarsening when the graph has at most `coarsest_factor · k`
    /// vertices.
    pub coarsest_factor: usize,
    /// Maximum number of coarsening levels.
    pub max_levels: usize,
    /// Refinement settings applied per level.
    pub kl: KlParams,
    /// Seed for the matching order.
    pub seed: u64,
}

impl Default for MultilevelParams {
    fn default() -> Self {
        Self {
            coarsest_factor: 8,
            max_levels: 20,
            kl: KlParams::default(),
            seed: 1,
        }
    }
}

struct Level {
    graph: Graph,
    costs: Vec<f64>,
    weights: Vec<f64>,
    /// Fine vertex → coarse vertex (map of the *next* coarser level).
    map: Vec<VertexId>,
}

/// Partition `(g, costs, weights)` into `k` parts.
pub fn multilevel(
    g: &Graph,
    costs: &[f64],
    weights: &[f64],
    k: usize,
    params: &MultilevelParams,
) -> Result<Coloring, SolveError> {
    if k == 0 {
        return Err(SolveError::ZeroColors);
    }
    validate_weights(g.num_vertices(), weights)?;
    validate_costs(g.num_edges(), costs)?;
    let mut rng = StdRng::seed_from_u64(params.seed);

    // Coarsening phase.
    let mut levels: Vec<Level> = Vec::new();
    let mut cur_graph = g.clone();
    let mut cur_costs = costs.to_vec();
    let mut cur_weights = weights.to_vec();
    while cur_graph.num_vertices() > params.coarsest_factor * k && levels.len() < params.max_levels
    {
        let (map, coarse_n) = heavy_edge_matching(&cur_graph, &cur_costs, &mut rng);
        if coarse_n == cur_graph.num_vertices() {
            break; // no contraction possible (edgeless)
        }
        let (next_graph, next_costs, next_weights) =
            contract(&cur_graph, &cur_costs, &cur_weights, &map, coarse_n);
        levels.push(Level {
            graph: std::mem::replace(&mut cur_graph, next_graph),
            costs: std::mem::replace(&mut cur_costs, next_costs),
            weights: std::mem::replace(&mut cur_weights, next_weights),
            map,
        });
    }

    // Initial partition on the coarsest graph. The inner calls only see
    // already-validated, internally consistent data, so errors cannot
    // occur here.
    let bfs = BfsSplitter::new(&cur_graph);
    let mut chi = recursive_bisection(&cur_graph, &bfs, &cur_weights, k)?;
    chi = refine(&cur_graph, &cur_costs, &cur_weights, &chi, &params.kl)?;

    // Uncoarsening with per-level refinement.
    while let Some(level) = levels.pop() {
        let mut fine = Coloring::new_uncolored(level.graph.num_vertices(), k);
        for v in 0..level.graph.num_vertices() as u32 {
            if let Some(c) = chi.get(level.map[v as usize]) {
                fine.set(v, c);
            }
        }
        chi = refine(
            &level.graph,
            &level.costs,
            &level.weights,
            &fine,
            &params.kl,
        )?;
    }
    Ok(chi)
}

/// [`multilevel`] as a [`Partitioner`].
#[derive(Clone, Copy, Debug, Default)]
pub struct Multilevel {
    /// Coarsening/refinement parameters applied to every call.
    pub params: MultilevelParams,
}

impl Partitioner for Multilevel {
    fn name(&self) -> &str {
        "multilevel"
    }

    fn partition(&self, inst: &Instance, k: usize) -> Result<Coloring, SolveError> {
        multilevel(inst.graph(), inst.costs(), inst.weights(), k, &self.params)
    }
}

/// Heavy-edge matching: returns (fine → coarse map, coarse vertex count).
fn heavy_edge_matching(g: &Graph, costs: &[f64], rng: &mut StdRng) -> (Vec<VertexId>, usize) {
    let n = g.num_vertices();
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.shuffle(rng);
    let mut mate = vec![u32::MAX; n];
    for &v in &order {
        if mate[v as usize] != u32::MAX {
            continue;
        }
        let heaviest = g
            .neighbors(v)
            .iter()
            .filter(|&&(nb, _)| mate[nb as usize] == u32::MAX && nb != v)
            // total_cmp + neighbor-id tie-break: matching must not depend
            // on adjacency-list order when edge costs tie.
            .max_by(|a, b| {
                costs[a.1 as usize]
                    .total_cmp(&costs[b.1 as usize])
                    .then(b.0.cmp(&a.0))
            });
        match heaviest {
            Some(&(nb, _)) => {
                mate[v as usize] = nb;
                mate[nb as usize] = v;
            }
            None => mate[v as usize] = v, // singleton
        }
    }
    // Assign coarse ids.
    let mut map = vec![u32::MAX; n];
    let mut next = 0u32;
    for v in 0..n as u32 {
        if map[v as usize] != u32::MAX {
            continue;
        }
        map[v as usize] = next;
        let m = mate[v as usize];
        if m != u32::MAX && m != v {
            map[m as usize] = next;
        }
        next += 1;
    }
    (map, next as usize)
}

/// Contract according to `map`, summing weights and parallel edge costs.
fn contract(
    g: &Graph,
    costs: &[f64],
    weights: &[f64],
    map: &[VertexId],
    coarse_n: usize,
) -> (Graph, Vec<f64>, Vec<f64>) {
    let mut coarse_weights = vec![0.0; coarse_n];
    for v in 0..g.num_vertices() {
        coarse_weights[map[v] as usize] += weights[v];
    }
    let mut agg: HashMap<(u32, u32), f64> = HashMap::new();
    for (e, &(u, v)) in g.edge_list().iter().enumerate() {
        let (cu, cv) = (map[u as usize], map[v as usize]);
        if cu == cv {
            continue;
        }
        let key = if cu < cv { (cu, cv) } else { (cv, cu) };
        *agg.entry(key).or_insert(0.0) += costs[e];
    }
    let mut keyed: Vec<((u32, u32), f64)> = agg.into_iter().collect();
    keyed.sort_unstable_by_key(|&(k, _)| k);
    let mut builder = GraphBuilder::new(coarse_n);
    for &((u, v), _) in &keyed {
        builder.add_edge(u, v);
    }
    let graph = builder.build();
    let coarse_costs = keyed.into_iter().map(|(_, c)| c).collect();
    (graph, coarse_costs, coarse_weights)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmb_graph::gen::grid::GridGraph;
    use mmb_graph::measure::{norm_1, norm_inf};

    #[test]
    fn partitions_grid_reasonably() {
        let grid = GridGraph::lattice(&[24, 24]);
        let n = grid.graph.num_vertices();
        let costs = vec![1.0; grid.graph.num_edges()];
        let weights = vec![1.0; n];
        let k = 4;
        let chi = multilevel(
            &grid.graph,
            &costs,
            &weights,
            k,
            &MultilevelParams::default(),
        )
        .unwrap();
        assert!(chi.is_total());
        // Loose balance.
        let cm = chi.class_measures(&weights);
        let avg = norm_1(&weights) / k as f64;
        assert!(norm_inf(&cm) <= 2.0 * avg, "classes {cm:?}");
        // Sane cut: far below cutting everything.
        let total_cut: f64 = chi.boundary_costs(&grid.graph, &costs).iter().sum::<f64>() / 2.0;
        assert!(
            total_cut < grid.graph.num_edges() as f64 / 4.0,
            "cut {total_cut}"
        );
    }

    #[test]
    fn heavy_edges_survive_coarsening() {
        // A grid where one column of edges is enormously expensive: the
        // matching should contract those first, and the final cut should
        // avoid them.
        let grid = GridGraph::lattice(&[16, 16]);
        let mut costs = vec![1.0; grid.graph.num_edges()];
        for (e, &(a, b)) in grid.graph.edge_list().iter().enumerate() {
            let (ca, cb) = (grid.coord(a), grid.coord(b));
            if ca[0] != cb[0] && ca[0].min(cb[0]) == 7 {
                costs[e] = 500.0;
            }
        }
        let n = grid.graph.num_vertices();
        let weights = vec![1.0; n];
        let chi = multilevel(
            &grid.graph,
            &costs,
            &weights,
            2,
            &MultilevelParams::default(),
        )
        .unwrap();
        let cut: f64 = chi.boundary_costs(&grid.graph, &costs).iter().sum::<f64>() / 2.0;
        assert!(
            cut < 500.0,
            "multilevel cut through the expensive column: {cut}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let grid = GridGraph::lattice(&[10, 10]);
        let costs = vec![1.0; grid.graph.num_edges()];
        let weights = vec![1.0; 100];
        let p = MultilevelParams {
            seed: 7,
            ..Default::default()
        };
        let a = multilevel(&grid.graph, &costs, &weights, 3, &p).unwrap();
        let b = multilevel(&grid.graph, &costs, &weights, 3, &p).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn tiny_graph_short_circuit() {
        let grid = GridGraph::lattice(&[2, 2]);
        let costs = vec![1.0; grid.graph.num_edges()];
        let weights = vec![1.0; 4];
        let chi = multilevel(
            &grid.graph,
            &costs,
            &weights,
            2,
            &MultilevelParams::default(),
        )
        .unwrap();
        assert!(chi.is_total());
    }
}
