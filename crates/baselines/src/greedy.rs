//! Greedy bin-packing baselines — perfect balance, boundary-blind.
//!
//! The paper (Section 1, "Strict weight-balancedness") observes that its
//! balance guarantee `(1 − 1/k)·‖w‖∞` matches what a greedy bin-packing
//! algorithm achieves, "however, in contrast to our methods, such a greedy
//! algorithm will in general create huge boundary costs". These baselines
//! make that comparison concrete (experiment E7).
//!
//! Entry points validate their inputs and return
//! `Result<_, `[`SolveError`]`>` like every other algorithm behind the
//! [`Partitioner`] interface; [`FirstFit`], [`Lpt`] and [`RoundRobin`]
//! are the trait adapters.

use mmb_core::api::{validate_weights, Instance, Partitioner, SolveError};
use mmb_graph::{Coloring, VertexId};

/// First-fit decreasing on vertex id order: each vertex goes to the
/// currently lightest class. Satisfies eq. (1) (the pairwise class gap
/// never exceeds `‖w‖∞`).
pub fn first_fit(n: usize, k: usize, weights: &[f64]) -> Result<Coloring, SolveError> {
    validate(n, k, weights)?;
    Ok(assign_in_order(n, k, weights, (0..n as u32).collect()))
}

/// Largest processing time (LPT): vertices in decreasing weight order,
/// each to the lightest class. The classical makespan heuristic; also
/// satisfies eq. (1).
pub fn lpt(n: usize, k: usize, weights: &[f64]) -> Result<Coloring, SolveError> {
    validate(n, k, weights)?;
    let mut order: Vec<VertexId> = (0..n as u32).collect();
    // total_cmp: total order on all f64 (validation already rejects NaN,
    // but the comparator must not be the line that enforces that).
    order.sort_by(|&a, &b| {
        weights[b as usize]
            .total_cmp(&weights[a as usize])
            .then(a.cmp(&b))
    });
    Ok(assign_in_order(n, k, weights, order))
}

/// Round-robin: vertex `v` gets color `v mod k`. Balanced only for flat
/// weights; maximally boundary-hostile on grids (every edge is cut for
/// k ≥ 2 on a path). The "what not to do" baseline.
pub fn round_robin(n: usize, k: usize) -> Result<Coloring, SolveError> {
    if k == 0 {
        return Err(SolveError::ZeroColors);
    }
    Ok(Coloring::from_fn(n, k, |v| v % k as u32))
}

fn validate(n: usize, k: usize, weights: &[f64]) -> Result<(), SolveError> {
    if k == 0 {
        return Err(SolveError::ZeroColors);
    }
    validate_weights(n, weights)?;
    Ok(())
}

fn assign_in_order(n: usize, k: usize, weights: &[f64], order: Vec<VertexId>) -> Coloring {
    let mut out = Coloring::new_uncolored(n, k);
    let mut load = vec![0.0f64; k];
    for v in order {
        // min_by is first-wins on ties, so the lowest-indexed lightest
        // class receives the vertex — deterministic for any load vector.
        let i = (0..k)
            .min_by(|&a, &b| load[a].total_cmp(&load[b]))
            .expect("k >= 1 classes");
        out.set(v, i as u32);
        load[i] += weights[v as usize];
    }
    out
}

/// [`first_fit`] as a [`Partitioner`].
#[derive(Clone, Copy, Debug, Default)]
pub struct FirstFit;

impl Partitioner for FirstFit {
    fn name(&self) -> &str {
        "greedy FF"
    }
    fn partition(&self, inst: &Instance, k: usize) -> Result<Coloring, SolveError> {
        first_fit(inst.num_vertices(), k, inst.weights())
    }
}

/// [`lpt`] as a [`Partitioner`].
#[derive(Clone, Copy, Debug, Default)]
pub struct Lpt;

impl Partitioner for Lpt {
    fn name(&self) -> &str {
        "greedy LPT"
    }
    fn partition(&self, inst: &Instance, k: usize) -> Result<Coloring, SolveError> {
        lpt(inst.num_vertices(), k, inst.weights())
    }
}

/// [`round_robin`] as a [`Partitioner`].
#[derive(Clone, Copy, Debug, Default)]
pub struct RoundRobin;

impl Partitioner for RoundRobin {
    fn name(&self) -> &str {
        "round robin"
    }
    fn partition(&self, inst: &Instance, k: usize) -> Result<Coloring, SolveError> {
        round_robin(inst.num_vertices(), k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmb_core::api::InstanceError;
    use mmb_graph::gen::misc::path;

    #[test]
    fn lpt_and_first_fit_are_strict() {
        let weights: Vec<f64> = (0..100).map(|v| 1.0 + ((v * 17) % 13) as f64).collect();
        for k in [2usize, 3, 7, 32] {
            assert!(
                lpt(100, k, &weights)
                    .unwrap()
                    .is_strictly_balanced(&weights),
                "lpt k={k}"
            );
            assert!(
                first_fit(100, k, &weights)
                    .unwrap()
                    .is_strictly_balanced(&weights),
                "first_fit k={k}"
            );
        }
    }

    #[test]
    fn round_robin_cuts_everything_on_a_path() {
        let g = path(50);
        let costs = vec![1.0; 49];
        let chi = round_robin(50, 2).unwrap();
        // Every edge joins consecutive ids → different colors.
        assert_eq!(
            chi.boundary_costs(&g, &costs).iter().sum::<f64>(),
            2.0 * 49.0
        );
    }

    #[test]
    fn greedy_ignores_boundaries() {
        // On a path with flat weights, first-fit interleaves colors and
        // cuts nearly every edge — the paper's point.
        let g = path(100);
        let costs = vec![1.0; 99];
        let weights = vec![1.0; 100];
        let chi = first_fit(100, 4, &weights).unwrap();
        let total_cut: f64 = chi.boundary_costs(&g, &costs).iter().sum::<f64>() / 2.0;
        assert!(
            total_cut > 50.0,
            "greedy should cut most edges, cut {total_cut}"
        );
    }

    #[test]
    fn handles_k_one_and_k_ge_n() {
        let weights = vec![1.0; 5];
        let c1 = lpt(5, 1, &weights).unwrap();
        assert!(c1.is_strictly_balanced(&weights));
        let c9 = lpt(5, 9, &weights).unwrap();
        assert!(c9.is_total());
        assert!(c9.is_strictly_balanced(&weights));
    }

    #[test]
    fn malformed_input_is_an_error_not_a_panic() {
        assert_eq!(lpt(5, 0, &[1.0; 5]).unwrap_err(), SolveError::ZeroColors);
        assert_eq!(round_robin(5, 0).unwrap_err(), SolveError::ZeroColors);
        assert_eq!(
            first_fit(5, 2, &[1.0; 3]).unwrap_err(),
            SolveError::Instance(InstanceError::WeightLength {
                got: 3,
                expected: 5
            })
        );
        assert_eq!(
            lpt(3, 2, &[1.0, f64::NAN, 1.0]).unwrap_err(),
            SolveError::Instance(InstanceError::NotFinite { what: "weights" })
        );
        assert_eq!(
            first_fit(3, 2, &[1.0, -1.0, 1.0]).unwrap_err(),
            SolveError::Instance(InstanceError::NotFinite { what: "weights" })
        );
    }
}
