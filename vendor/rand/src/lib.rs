//! Offline, deterministic stand-in for the subset of the [`rand`] crate API
//! this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! a tiny shim instead of the real crate. Only what the `mmb-*` crates
//! actually call is provided:
//!
//! * [`rngs::StdRng`] — a [splitmix64]-seeded xoshiro256++ generator,
//!   constructed via [`SeedableRng::seed_from_u64`];
//! * [`RngExt`] — `random::<f64>()`, `random::<bool>()`, and
//!   `random_range(..)` over integer ranges;
//! * [`seq::SliceRandom`] — Fisher–Yates `shuffle`.
//!
//! All generators are fully deterministic given the seed; the experiment
//! harness depends on this for reproducible instance generation.
//!
//! [`rand`]: https://docs.rs/rand
//! [splitmix64]: https://prng.di.unimi.it/splitmix64.c

/// A source of pseudo-random `u64` words.
pub trait RngCore {
    /// Return the next pseudo-random 64-bit word.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose full state is derived from `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a generator's raw output.
pub trait Random: Sized {
    /// Sample a value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Random for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Random for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Random for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

/// Ranges that [`RngExt::random_range`] can sample from.
pub trait SampleRange<T> {
    /// Sample a value uniformly from the range.
    fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform integer in `[0, bound)` by rejection-free multiply-shift
/// (Lemire). `bound` must be positive.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    ((rng.next_u64() as u128 * bound as u128) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "empty range in random_range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + rng.next_u64() as $t;
                }
                lo + uniform_below(rng, span + 1) as $t
            }
        }
    )*};
}
impl_int_range!(usize, u32, u64);

/// Convenience sampling methods, mirroring the `rand` 0.9 `Rng` trait.
pub trait RngExt: RngCore {
    /// Sample a value of type `T` (uniform `[0,1)` for `f64`, fair coin for
    /// `bool`, full range for unsigned integers).
    fn random<T: Random>(&mut self) -> T {
        T::sample(self)
    }

    /// Sample uniformly from an integer range (`a..b` or `a..=b`).
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_in(self)
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator seeded via splitmix64.
    ///
    /// Not cryptographically secure — statistical quality only, which is all
    /// the instance generators need.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers.
pub mod seq {
    use super::{RngCore, RngExt};

    /// In-place random reordering of slices.
    pub trait SliceRandom {
        /// Shuffle the slice uniformly (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_across_construction() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = rng.random_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.random_range(5u32..=9);
            assert!((5..=9).contains(&y));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }

    #[test]
    fn bools_are_mixed() {
        let mut rng = StdRng::seed_from_u64(1);
        let heads = (0..1000).filter(|_| rng.random::<bool>()).count();
        assert!((300..700).contains(&heads), "suspicious coin: {heads}/1000");
    }
}
