//! Offline stand-in for the subset of the [`criterion`] benchmarking API
//! this workspace uses.
//!
//! The build environment has no access to crates.io, so the four
//! `mmb-bench` bench targets link against this shim. It keeps criterion's
//! call shape (`criterion_group!`/`criterion_main!`, benchmark groups,
//! `bench_with_input`, `Bencher::iter`) and implements a plain
//! wall-clock harness:
//!
//! * under `cargo bench` (cargo passes `--bench` to the target) each
//!   routine is warmed up once and then timed for `sample_size` samples;
//!   min/mean/max are printed per benchmark;
//! * under any other invocation — notably `cargo test`, which compiles and
//!   runs `harness = false` bench targets — each routine runs **exactly
//!   once** as a smoke test, so the tier-1 suite stays fast.
//!
//! Statistical analysis, HTML reports, and outlier detection are out of
//! scope; swapping in the real crate is a one-line `Cargo.toml` change.
//!
//! [`criterion`]: https://docs.rs/criterion

use std::fmt::Display;
use std::time::Instant;

pub use std::hint::black_box;

/// How the harness was invoked.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Mode {
    /// `cargo bench`: measure and report.
    Measure,
    /// Anything else (e.g. `cargo test`): run each routine once.
    Smoke,
}

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
pub struct Criterion {
    mode: Mode,
}

impl Default for Criterion {
    /// Detect the invocation mode from the process arguments.
    fn default() -> Self {
        let measure = std::env::args().any(|a| a == "--bench");
        Criterion {
            mode: if measure { Mode::Measure } else { Mode::Smoke },
        }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 20,
            criterion: self,
        }
    }

    /// Benchmark a single function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let mode = self.mode;
        let sample_size = 20;
        run_one(mode, id, sample_size, f);
        self
    }
}

/// A named benchmark group with shared settings.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples taken per benchmark in measure mode.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Benchmark `f` under `group_name/id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        run_one(self.criterion.mode, &full, self.sample_size, f);
        self
    }

    /// Benchmark `f` with an explicit input value under `group_name/id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.0);
        run_one(self.criterion.mode, &full, self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// End the group. (No-op beyond matching criterion's API.)
    pub fn finish(self) {}
}

/// Identifier for a parameterized benchmark.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId(format!("{}/{}", function_name.into(), parameter))
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Timer handle passed to benchmark closures.
pub struct Bencher {
    mode: Mode,
    sample_size: usize,
    /// Collected sample durations in seconds (measure mode only).
    samples: Vec<f64>,
}

impl Bencher {
    /// Run `routine` repeatedly, timing each call.
    ///
    /// In smoke mode the routine runs exactly once and nothing is recorded.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        match self.mode {
            Mode::Smoke => {
                black_box(routine());
            }
            Mode::Measure => {
                // Warm-up.
                black_box(routine());
                for _ in 0..self.sample_size {
                    let t = Instant::now();
                    black_box(routine());
                    self.samples.push(t.elapsed().as_secs_f64());
                }
            }
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(mode: Mode, id: &str, sample_size: usize, mut f: F) {
    let mut b = Bencher {
        mode,
        sample_size,
        samples: Vec::new(),
    };
    f(&mut b);
    if mode == Mode::Measure && !b.samples.is_empty() {
        let n = b.samples.len() as f64;
        let mean = b.samples.iter().sum::<f64>() / n;
        let min = b.samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = b.samples.iter().cloned().fold(0.0f64, f64::max);
        println!(
            "{id:<40} time: [{} {} {}]  ({} samples)",
            fmt_secs(min),
            fmt_secs(mean),
            fmt_secs(max),
            b.samples.len()
        );
    }
}

fn fmt_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} µs", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

/// Bundle benchmark functions into a group runner, mirroring criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Entry point running one or more [`criterion_group!`] groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_routine_once() {
        let mut count = 0usize;
        run_one(Mode::Smoke, "t", 10, |b| b.iter(|| count += 1));
        assert_eq!(count, 1);
    }

    #[test]
    fn measure_mode_collects_samples() {
        let mut count = 0usize;
        run_one(Mode::Measure, "t", 5, |b| b.iter(|| count += 1));
        // warm-up + 5 samples
        assert_eq!(count, 6);
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("f", 32).0, "f/32");
        assert_eq!(BenchmarkId::from_parameter(1e6).0, "1000000");
    }
}
