//! Offline, **sequential** stand-in for the subset of the [`rayon`] API this
//! workspace uses.
//!
//! The build environment has no access to crates.io, so `par_iter`-style
//! calls resolve to this shim and execute on the calling thread. The API
//! mirrors rayon's shape (`into_par_iter().map(..).reduce(identity, op)`) so
//! that swapping in the real crate later is a one-line `Cargo.toml` change —
//! no call sites move.
//!
//! [`rayon`]: https://docs.rs/rayon

/// Everything call sites need in scope, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParIter};
}

/// A "parallel" iterator: a thin wrapper over a sequential [`Iterator`]
/// exposing rayon-shaped combinators.
pub struct ParIter<I>(I);

/// Conversion into a [`ParIter`], mirroring `rayon::iter::IntoParallelIterator`.
pub trait IntoParallelIterator: IntoIterator + Sized {
    /// Wrap `self` in a [`ParIter`]. Sequential in this shim.
    fn into_par_iter(self) -> ParIter<Self::IntoIter> {
        ParIter(self.into_iter())
    }
}

impl<T: IntoIterator + Sized> IntoParallelIterator for T {}

/// Borrowing conversion, mirroring `rayon::iter::IntoParallelRefIterator`.
pub trait IntoParallelRefIterator<'a> {
    /// The borrowed item type.
    type Item: 'a;
    /// The underlying sequential iterator.
    type Iter: Iterator<Item = Self::Item>;
    /// Iterate over `&self`. Sequential in this shim.
    fn par_iter(&'a self) -> ParIter<Self::Iter>;
}

impl<'a, C: 'a> IntoParallelRefIterator<'a> for C
where
    &'a C: IntoIterator,
{
    type Item = <&'a C as IntoIterator>::Item;
    type Iter = <&'a C as IntoIterator>::IntoIter;
    fn par_iter(&'a self) -> ParIter<Self::Iter> {
        ParIter(self.into_iter())
    }
}

impl<I: Iterator> ParIter<I> {
    /// Map each item. See [`Iterator::map`].
    pub fn map<O, F: FnMut(I::Item) -> O>(self, f: F) -> ParIter<core::iter::Map<I, F>> {
        ParIter(self.0.map(f))
    }

    /// Keep items satisfying `pred`. See [`Iterator::filter`].
    pub fn filter<F: FnMut(&I::Item) -> bool>(self, pred: F) -> ParIter<core::iter::Filter<I, F>> {
        ParIter(self.0.filter(pred))
    }

    /// Rayon-shaped reduce: fold from `identity()` with `op`.
    pub fn reduce<Id, Op>(self, identity: Id, op: Op) -> I::Item
    where
        Id: Fn() -> I::Item,
        Op: Fn(I::Item, I::Item) -> I::Item,
    {
        self.0.fold(identity(), op)
    }

    /// Run `f` on every item.
    pub fn for_each<F: FnMut(I::Item)>(self, f: F) {
        self.0.for_each(f)
    }

    /// Sum the items.
    pub fn sum<S: core::iter::Sum<I::Item>>(self) -> S {
        self.0.sum()
    }

    /// Count the items.
    pub fn count(self) -> usize {
        self.0.count()
    }

    /// Collect into any [`FromIterator`] collection.
    pub fn collect<B: FromIterator<I::Item>>(self) -> B {
        self.0.collect()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_reduce_matches_sequential() {
        let got = (0u32..100)
            .into_par_iter()
            .map(|x| x as f64)
            .reduce(|| f64::INFINITY, f64::min);
        assert_eq!(got, 0.0);
    }

    #[test]
    fn par_iter_borrows() {
        let v = vec![1, 2, 3];
        let s: i32 = v.par_iter().map(|&x| x * 2).sum();
        assert_eq!(s, 12);
    }

    #[test]
    fn filter_collect() {
        let evens: Vec<u32> = (0u32..10).into_par_iter().filter(|x| x % 2 == 0).collect();
        assert_eq!(evens, vec![0, 2, 4, 6, 8]);
    }
}
