//! Offline, **parallel** stand-in for the subset of the [`rayon`] API this
//! workspace uses.
//!
//! The build environment has no access to crates.io, so `par_iter`-style
//! calls resolve to this shim. Unlike the original bootstrap version (which
//! ran everything on the calling thread), this implementation executes work
//! on a chunked [`std::thread::scope`] pool while keeping rayon's call shape
//! (`into_par_iter().map(..).reduce(identity, op)`), so swapping in the real
//! crate later is a one-line `Cargo.toml` change — no call sites move.
//!
//! ## Execution model
//!
//! Combinators are *eager*: each `map`/`filter`/`for_each` call materializes
//! its input, splits it into fixed-size chunks, distributes the chunks
//! round-robin over `current_num_threads()` scoped worker threads, and
//! writes results back into their original positions. Terminal reductions
//! (`reduce`, `sum`, `count`, `collect`) then fold the materialized results
//! **sequentially in input order**.
//!
//! ## Determinism
//!
//! Because placement is by index and every reduction folds in input order,
//! results are **bit-identical for every thread count, including 1** — even
//! for non-associative operations such as `f64` addition. This is a
//! deliberately stronger guarantee than real rayon's (which only promises
//! determinism for associative operators); the decomposition pipeline's
//! "parallel equals sequential" equivalence tests rely on it.
//!
//! ## Thread count
//!
//! `current_num_threads()` resolves, in order: the innermost
//! [`with_num_threads`] override on this thread, the `RAYON_NUM_THREADS`
//! environment variable, and [`std::thread::available_parallelism`]. Worker
//! threads run with an override of 1, so nested parallel calls inside a
//! worker execute inline instead of oversubscribing the machine.
//!
//! [`rayon`]: https://docs.rs/rayon

use std::cell::Cell;
use std::thread;

/// Everything call sites need in scope, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParIter};
}

thread_local! {
    /// Innermost `with_num_threads` override; 0 means "not set".
    static THREAD_OVERRIDE: Cell<usize> = const { Cell::new(0) };
}

/// The number of worker threads parallel calls on this thread will use.
///
/// Resolution order: [`with_num_threads`] override → `RAYON_NUM_THREADS`
/// (parsed, values ≥ 1) → [`std::thread::available_parallelism`] → 1.
pub fn current_num_threads() -> usize {
    let overridden = THREAD_OVERRIDE.with(Cell::get);
    if overridden > 0 {
        return overridden;
    }
    if let Ok(s) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = s.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    thread::available_parallelism()
        .map(usize::from)
        .unwrap_or(1)
}

/// Run `f` with [`current_num_threads`] forced to `n` on this thread
/// (shim-only helper; real rayon spells this `ThreadPoolBuilder::install`).
///
/// Restores the previous override on exit — including on unwind, so a
/// caught panic inside `f` cannot leave the thread's budget stuck.
pub fn with_num_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    assert!(n >= 1, "thread count must be at least 1");
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            THREAD_OVERRIDE.with(|o| o.set(self.0));
        }
    }
    let _restore = Restore(THREAD_OVERRIDE.with(|o| o.replace(n)));
    f()
}

/// Target number of chunks per worker thread: more chunks than threads so
/// the round-robin schedule balances uneven per-item work.
const CHUNKS_PER_THREAD: usize = 4;

fn chunk_len(len: usize, threads: usize) -> usize {
    len.div_ceil(threads * CHUNKS_PER_THREAD).max(1)
}

/// Apply `f` to every item, in parallel, preserving input order.
fn par_apply<T: Send, O: Send, F: Fn(T) -> O + Sync>(items: Vec<T>, f: F) -> Vec<O> {
    let len = items.len();
    let threads = current_num_threads().min(len);
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    // Items move into `Option` slots so worker threads can take ownership
    // element-wise through disjoint `&mut` chunk slices (no unsafe needed);
    // outputs land in `Option` slots at the same indices.
    let mut slots: Vec<Option<T>> = items.into_iter().map(Some).collect();
    let mut out: Vec<Option<O>> = (0..len).map(|_| None).collect();
    let chunk = chunk_len(len, threads);
    // Round-robin the (input, output) chunk pairs over the workers up
    // front: placement is by index, so the schedule never affects results.
    type ChunkPair<'a, T, O> = (&'a mut [Option<T>], &'a mut [Option<O>]);
    let mut buckets: Vec<Vec<ChunkPair<'_, T, O>>> = (0..threads).map(|_| Vec::new()).collect();
    for (i, pair) in slots
        .chunks_mut(chunk)
        .zip(out.chunks_mut(chunk))
        .enumerate()
    {
        buckets[i % threads].push(pair);
    }
    let f = &f;
    thread::scope(|scope| {
        for bucket in buckets {
            scope.spawn(move || {
                // Nested parallel calls inside a worker run inline.
                with_num_threads(1, || {
                    for (ins, outs) in bucket {
                        for (slot, o) in ins.iter_mut().zip(outs) {
                            *o = Some(f(slot.take().expect("item taken twice")));
                        }
                    }
                });
            });
        }
    });
    out.into_iter()
        .map(|o| o.expect("worker skipped a chunk"))
        .collect()
}

/// Run `a` and `b`, potentially in parallel, and return both results —
/// mirroring `rayon::join`. Deterministic: the return value is always
/// `(a(), b())` regardless of scheduling.
pub fn join<RA: Send, RB: Send>(
    a: impl FnOnce() -> RA + Send,
    b: impl FnOnce() -> RB + Send,
) -> (RA, RB) {
    let threads = current_num_threads();
    if threads <= 1 {
        return (a(), b());
    }
    // Split the budget between the branches so recursive joins fan out to
    // roughly `threads` leaves instead of 2^depth threads.
    let half = threads / 2;
    thread::scope(|scope| {
        let hb = scope.spawn(move || with_num_threads(half.max(1), b));
        let ra = with_num_threads(threads - half, a);
        (ra, hb.join().expect("join branch panicked"))
    })
}

/// A parallel iterator: an eagerly materialized sequence whose combinators
/// execute on the chunked thread pool (see the [module docs](self)).
pub struct ParIter<T: Send> {
    items: Vec<T>,
}

/// Conversion into a [`ParIter`], mirroring `rayon::iter::IntoParallelIterator`.
pub trait IntoParallelIterator: IntoIterator + Sized
where
    Self::Item: Send,
{
    /// Materialize `self` as a [`ParIter`].
    fn into_par_iter(self) -> ParIter<Self::Item> {
        ParIter {
            items: self.into_iter().collect(),
        }
    }
}

impl<T: IntoIterator + Sized> IntoParallelIterator for T where T::Item: Send {}

/// Borrowing conversion, mirroring `rayon::iter::IntoParallelRefIterator`.
pub trait IntoParallelRefIterator<'a> {
    /// The borrowed item type.
    type Item: 'a + Send;
    /// Iterate over `&self` in parallel.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, C: 'a + ?Sized> IntoParallelRefIterator<'a> for C
where
    &'a C: IntoIterator,
    <&'a C as IntoIterator>::Item: Send,
{
    type Item = <&'a C as IntoIterator>::Item;
    fn par_iter(&'a self) -> ParIter<Self::Item> {
        ParIter {
            items: self.into_iter().collect(),
        }
    }
}

impl<T: Send> ParIter<T> {
    /// Map each item on the thread pool, preserving order.
    pub fn map<O: Send, F: Fn(T) -> O + Sync>(self, f: F) -> ParIter<O> {
        ParIter {
            items: par_apply(self.items, f),
        }
    }

    /// Keep items satisfying `pred` (evaluated in parallel), preserving
    /// order.
    pub fn filter<F: Fn(&T) -> bool + Sync>(self, pred: F) -> ParIter<T>
    where
        T: Sync,
    {
        let keep: Vec<bool> = {
            let refs: Vec<&T> = self.items.iter().collect();
            par_apply(refs, &pred)
        };
        ParIter {
            items: self
                .items
                .into_iter()
                .zip(keep)
                .filter_map(|(t, k)| k.then_some(t))
                .collect(),
        }
    }

    /// Rayon-shaped reduce: fold from `identity()` with `op`,
    /// **sequentially in input order** (bit-identical for every thread
    /// count; see the [module docs](self)).
    pub fn reduce<Id, Op>(self, identity: Id, op: Op) -> T
    where
        Id: Fn() -> T,
        Op: Fn(T, T) -> T,
    {
        self.items.into_iter().fold(identity(), op)
    }

    /// Run `f` on every item on the thread pool.
    pub fn for_each<F: Fn(T) + Sync>(self, f: F) {
        let _ = par_apply(self.items, f);
    }

    /// Sum the items (sequential in-order fold over already-computed
    /// values).
    pub fn sum<S: core::iter::Sum<T>>(self) -> S {
        self.items.into_iter().sum()
    }

    /// Count the items.
    pub fn count(self) -> usize {
        self.items.len()
    }

    /// Collect into any [`FromIterator`] collection, in input order.
    pub fn collect<B: FromIterator<T>>(self) -> B {
        self.items.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::{current_num_threads, join, with_num_threads};
    use std::collections::HashSet;
    use std::sync::Mutex;

    #[test]
    fn map_reduce_matches_sequential() {
        let got = (0u32..100)
            .into_par_iter()
            .map(|x| x as f64)
            .reduce(|| f64::INFINITY, f64::min);
        assert_eq!(got, 0.0);
    }

    #[test]
    fn par_iter_borrows() {
        let v = vec![1, 2, 3];
        let s: i32 = v.par_iter().map(|&x| x * 2).sum();
        assert_eq!(s, 12);
    }

    #[test]
    fn filter_collect() {
        let evens: Vec<u32> = (0u32..10).into_par_iter().filter(|x| x % 2 == 0).collect();
        assert_eq!(evens, vec![0, 2, 4, 6, 8]);
    }

    #[test]
    fn f64_sum_bit_identical_across_thread_counts() {
        // Non-associative f64 addition: the chunked fixed-order reduction
        // must reproduce the flat sequential fold bit for bit, for every
        // thread count.
        let data: Vec<f64> = (0..10_000)
            .map(|i| 1.0 / (i as f64 + 1.0) + (i as f64 * 1e-7))
            .collect();
        let sequential = data.iter().fold(0.0f64, |a, &b| a + b);
        for threads in [1usize, 2, 3, 4, 7, 16] {
            let parallel = with_num_threads(threads, || {
                data.par_iter().map(|&x| x).reduce(|| 0.0, |a, b| a + b)
            });
            assert_eq!(
                parallel.to_bits(),
                sequential.to_bits(),
                "thread count {threads} changed the f64 sum"
            );
            let via_sum: f64 = with_num_threads(threads, || data.par_iter().map(|&x| x).sum());
            assert_eq!(via_sum.to_bits(), sequential.to_bits());
        }
    }

    #[test]
    fn map_preserves_order_under_parallelism() {
        let out: Vec<usize> = with_num_threads(8, || {
            (0..1000usize).into_par_iter().map(|x| x * 2).collect()
        });
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn work_actually_runs_on_multiple_threads() {
        // Structural proof of parallelism: with a 4-thread budget and many
        // chunks, at least two distinct worker threads must touch items.
        let ids = Mutex::new(HashSet::new());
        with_num_threads(4, || {
            (0..256u32).into_par_iter().for_each(|_| {
                ids.lock().unwrap().insert(std::thread::current().id());
            });
        });
        assert!(
            ids.lock().unwrap().len() >= 2,
            "expected work on ≥ 2 threads"
        );
    }

    #[test]
    fn override_is_scoped_and_nested() {
        let ambient = current_num_threads();
        let (inner, innermost) = with_num_threads(3, || {
            (
                current_num_threads(),
                with_num_threads(5, current_num_threads),
            )
        });
        assert_eq!(inner, 3);
        assert_eq!(innermost, 5);
        assert_eq!(current_num_threads(), ambient);
    }

    #[test]
    fn join_returns_both_in_order() {
        for threads in [1usize, 2, 4] {
            let (a, b) = with_num_threads(threads, || join(|| 1 + 1, || "b"));
            assert_eq!((a, b), (2, "b"));
        }
    }

    #[test]
    fn workers_run_nested_calls_inline() {
        // A nested parallel call inside a worker sees a 1-thread budget.
        let nested: Vec<usize> = with_num_threads(4, || {
            (0..8u32)
                .into_par_iter()
                .map(|_| current_num_threads())
                .collect()
        });
        assert!(nested.iter().all(|&n| n == 1), "nested budgets: {nested:?}");
    }
}
