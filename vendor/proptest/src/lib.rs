//! Offline stand-in for the subset of the [`proptest`] API this workspace
//! uses.
//!
//! The build environment has no access to crates.io, so the property-based
//! test suites link against this shim. It keeps proptest's surface shape —
//! the [`proptest!`] macro, [`Strategy`](strategy::Strategy) with
//! `prop_map`, `any::<T>()`, range strategies, and
//! [`collection::vec`]/[`collection::btree_set`] — backed by a plain
//! deterministic random-case runner:
//!
//! * each `#[test]` function runs `ProptestConfig::cases` random cases
//!   (default 256) from a seed derived from the test name, so failures
//!   reproduce across runs;
//! * `prop_assert!`/`prop_assert_eq!` panic immediately with the formatted
//!   message — there is **no shrinking**; the deterministic seed plays that
//!   role for debugging.
//!
//! [`proptest`]: https://docs.rs/proptest

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::TestRng;

    /// A recipe for generating values of type [`Strategy::Value`].
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generate one value from `rng`.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.int_range(self.start as u64, self.end as u64, false) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.int_range(*self.start() as u64, *self.end() as u64, true) as $t
                }
            }
        )*};
    }
    impl_int_range_strategy!(usize, u64, u32, u16, u8);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty f64 range strategy");
            let x = self.start + rng.unit_f64() * (self.end - self.start);
            // `start + u*(end-start)` can round up to `end`; the range
            // contract is half-open, so clamp just below it.
            if x >= self.end {
                self.end.next_down()
            } else {
                x
            }
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }

    /// Strategy for "any value of `T`" — see [`crate::arbitrary::any`].
    pub struct Any<T>(pub(crate) core::marker::PhantomData<T>);

    impl Strategy for Any<u64> {
        type Value = u64;
        fn generate(&self, rng: &mut TestRng) -> u64 {
            rng.next_u64()
        }
    }

    impl Strategy for Any<u32> {
        type Value = u32;
        fn generate(&self, rng: &mut TestRng) -> u32 {
            (rng.next_u64() >> 32) as u32
        }
    }

    impl Strategy for Any<bool> {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Strategy for Any<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            rng.unit_f64()
        }
    }
}

pub mod arbitrary {
    //! The [`any`] entry point.

    use crate::strategy::Any;

    /// Strategy generating arbitrary values of `T` (`u64`, `u32`, `bool`,
    /// `f64` are supported).
    pub fn any<T>() -> Any<T>
    where
        Any<T>: crate::strategy::Strategy<Value = T>,
    {
        Any(core::marker::PhantomData)
    }
}

pub mod collection {
    //! Collection strategies: [`vec()`] and [`btree_set`].

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeSet;

    /// A range of collection sizes.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        /// Inclusive upper bound.
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl SizeRange {
        fn sample(&self, rng: &mut TestRng) -> usize {
            rng.int_range(self.lo as u64, self.hi as u64, true) as usize
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<S::Value>` with *up to* `size` elements
    /// (duplicates collapse, as in real proptest).
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy returned by [`btree_set`].
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Configuration and the deterministic case runner.

    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    /// Per-test configuration; only `cases` is interpreted by the shim.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// Config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Deterministic RNG handed to strategies.
    pub struct TestRng(StdRng);

    impl TestRng {
        /// Seed deterministically from a test name (FNV-1a) so every run of
        /// a given test generates the same case sequence.
        pub fn from_name(name: &str) -> Self {
            let mut h: u64 = 0xcbf29ce484222325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            TestRng(StdRng::seed_from_u64(h))
        }

        /// Next raw 64-bit word.
        pub fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform integer in `[lo, hi)` (or `[lo, hi]` if `inclusive`).
        pub fn int_range(&mut self, lo: u64, hi: u64, inclusive: bool) -> u64 {
            if inclusive {
                assert!(lo <= hi, "empty integer range strategy [{lo}, {hi}]");
                let span = hi - lo;
                if span == u64::MAX {
                    return self.next_u64();
                }
                lo + ((self.next_u64() as u128 * (span + 1) as u128) >> 64) as u64
            } else {
                assert!(lo < hi, "empty integer range strategy [{lo}, {hi})");
                let span = hi - lo;
                lo + ((self.next_u64() as u128 * span as u128) >> 64) as u64
            }
        }
    }
}

/// Common imports for property tests, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Assert a condition inside a property; panics (no shrinking) on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+)
    };
}

/// Assert equality inside a property; panics (no shrinking) on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_eq!($left, $right, $($fmt)+)
    };
}

/// Define property tests.
///
/// Supported form (the subset this workspace uses):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))] // optional
///     #[test]
///     fn my_property(x in 0usize..10, v in proptest::collection::vec(0.0f64..1.0, 0..5)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($cfg:expr) $(
        #[test]
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::from_name(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for _case in 0..config.cases {
                $(
                    let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);
                )+
                $body
            }
        }
    )*};
}
