//! Bit-identity pin for the `Multilevel` baseline across the coarsening
//! extraction.
//!
//! The heavy-edge matching / contraction / projection machinery moved
//! from `mmb_baselines::multilevel` into the shared `mmb_core::coarsen`
//! module (so the pipeline's large-`n` cascade can reuse it). These
//! golden colorings were captured from the baseline **before** the move;
//! the refactor is required to be a pure code motion, so any divergence
//! here — a different rng threading, a changed stop condition, a
//! non-identical parallel-edge aggregation order — is a bug, not an
//! update-the-golden event.

use mmb_baselines::multilevel::{multilevel, MultilevelParams};
use mmb_graph::gen::grid::GridGraph;
use mmb_graph::gen::tree::random_tree;

const GOLDEN_GRID_K3_SEED7: [u32; 100] = [
    0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 0, 0,
    0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 1, 1, 1, 1, 1, 1, 1, 1, 2, 2, 1, 1, 1, 1, 1, 1, 1, 1, 2, 2, 2, 2,
    1, 1, 1, 1, 1, 1, 2, 2, 2, 2, 2, 2, 2, 1, 1, 1, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2,
    2, 2, 2, 2,
];

const GOLDEN_HEAVY_COLUMN_K2: [u32; 256] = [
    0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0,
    0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0,
    0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1, 1,
    0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 1, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 1, 1, 1, 1, 1,
    0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 1, 1, 1, 1, 1, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 1, 1, 1, 1, 1,
    0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1,
    1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1,
    1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1,
];

const GOLDEN_TREE_K4_SEED13: [u32; 60] = [
    0, 0, 0, 0, 0, 0, 1, 1, 1, 2, 2, 0, 2, 0, 1, 0, 2, 0, 1, 3, 1, 3, 2, 1, 0, 2, 2, 2, 0, 3, 0, 1,
    1, 0, 0, 1, 2, 2, 3, 1, 1, 3, 3, 2, 3, 0, 2, 1, 3, 3, 3, 2, 0, 2, 1, 2, 0, 3, 3, 3,
];

#[test]
fn grid_unit_costs_pins_historical_coloring() {
    let grid = GridGraph::lattice(&[10, 10]);
    let costs = vec![1.0; grid.graph.num_edges()];
    let weights = vec![1.0; 100];
    let params = MultilevelParams {
        seed: 7,
        ..Default::default()
    };
    let chi = multilevel(&grid.graph, &costs, &weights, 3, &params).unwrap();
    let got: Vec<u32> = (0..100u32).map(|v| chi.get(v).unwrap()).collect();
    assert_eq!(got, GOLDEN_GRID_K3_SEED7);
}

#[test]
fn heavy_column_grid_pins_historical_coloring() {
    let grid = GridGraph::lattice(&[16, 16]);
    let mut costs = vec![1.0; grid.graph.num_edges()];
    for (e, &(a, b)) in grid.graph.edge_list().iter().enumerate() {
        let (ca, cb) = (grid.coord(a), grid.coord(b));
        if ca[0] != cb[0] && ca[0].min(cb[0]) == 7 {
            costs[e] = 500.0;
        }
    }
    let n = grid.graph.num_vertices();
    let weights: Vec<f64> = (0..n).map(|v| 1.0 + (v % 3) as f64).collect();
    let chi = multilevel(
        &grid.graph,
        &costs,
        &weights,
        2,
        &MultilevelParams::default(),
    )
    .unwrap();
    let got: Vec<u32> = (0..n as u32).map(|v| chi.get(v).unwrap()).collect();
    assert_eq!(got, GOLDEN_HEAVY_COLUMN_K2);
}

#[test]
fn weighted_tree_pins_historical_coloring() {
    let g = random_tree(60, 3, 99);
    let costs: Vec<f64> = (0..g.num_edges()).map(|e| 1.0 + (e % 5) as f64).collect();
    let weights: Vec<f64> = (0..60).map(|v| 1.0 + (v % 4) as f64).collect();
    let params = MultilevelParams {
        seed: 13,
        ..Default::default()
    };
    let chi = multilevel(&g, &costs, &weights, 4, &params).unwrap();
    let got: Vec<u32> = (0..60u32).map(|v| chi.get(v).unwrap()).collect();
    assert_eq!(got, GOLDEN_TREE_K4_SEED13);
}
