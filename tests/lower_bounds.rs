//! Differential tests for the certified lower-bound engine
//! (`mmb_core::lower_bounds`): soundness against the exact oracle and
//! every partitioner, machine-checkable derivations, scratch-policy
//! invariance, tightness on recognized families, and the
//! `Solver::solve_certified` threading.
//!
//! The optimality chain being certified, on every instance the suite
//! touches:
//!
//! ```text
//! every certificate ≤ best certificate ≤ OPT ≤ cost of any strictly
//!                                              balanced coloring
//! ```
//!
//! Non-strict colorings are outside the bounds' feasible set and are
//! exempt from the right-hand comparison — the same convention as the
//! oracle differential suite.

use mmb_bench::standard_baselines;
use mmb_core::api::{Instance, Partitioner, Solver, Theorem4Pipeline};
use mmb_core::lower_bounds::{best_lower_bound, certify, standard_certifiers, CertifiedGap};
use mmb_core::oracle::exact_min_max_boundary;
use mmb_core::pipeline::{PipelineConfig, ScratchPolicy};
use mmb_graph::gen::lattice::hypercube;
use mmb_graph::gen::misc::path;
use mmb_graph::workspace::with_scratch_mode;
use mmb_instances::corpus::Corpus;

fn tol(x: f64) -> f64 {
    1e-9 * (1.0 + x.abs())
}

#[test]
fn every_certifier_is_below_the_oracle_on_every_small_entry() {
    // The heart of the soundness story: on every oracle-sized corpus
    // entry, *each individual certificate* — not just the stack max —
    // must sit at or below the exact optimum.
    let certifiers = standard_certifiers();
    let mut fired = vec![0usize; certifiers.len()];
    for entry in &Corpus::small() {
        let inst = &entry.instance;
        for k in [2usize, 3] {
            let opt = exact_min_max_boundary(inst, k).unwrap().max_boundary;
            for (i, certifier) in certifiers.iter().enumerate() {
                let Some(cert) = certifier.certify(inst, k) else {
                    continue;
                };
                fired[i] += 1;
                assert!(
                    cert.value <= opt + tol(opt),
                    "{} k={k}: certifier `{}` claims {} above the optimum {}",
                    entry.name,
                    cert.certifier,
                    cert.value,
                    opt
                );
            }
        }
    }
    // The suite must actually exercise the stack: volume, packing and
    // the oracle run everywhere; min-cut and structure on their
    // preconditions.
    for (i, certifier) in certifiers.iter().enumerate() {
        assert!(
            fired[i] > 0,
            "certifier `{}` never fired across the small corpus",
            certifier.name()
        );
    }
}

#[test]
fn lower_bound_never_beaten_corpus_wide() {
    // Stack max vs every partitioner's strictly balanced output, over
    // the whole quick corpus (the full-size regime the oracle cannot
    // reach).
    let baselines = standard_baselines();
    let pipeline = Theorem4Pipeline::default();
    let mut comparisons = 0usize;
    for entry in &Corpus::quick() {
        let inst = &entry.instance;
        let lower = best_lower_bound(inst, entry.k).value();
        assert!(lower > 0.0, "{}: trivial lower bound", entry.name);
        let mut algos: Vec<&dyn Partitioner> = vec![&pipeline];
        algos.extend(baselines.iter().map(|b| b.as_ref()));
        for algo in algos {
            let Ok(chi) = algo.partition(inst, entry.k) else {
                continue;
            };
            if !chi.is_strictly_balanced(inst.weights()) {
                continue; // outside the bounds' feasible set
            }
            comparisons += 1;
            let cost = chi.max_boundary_cost(inst.graph(), inst.costs());
            assert!(
                lower <= cost + tol(cost),
                "{}: lower bound {} beats `{}` at {}",
                entry.name,
                lower,
                algo.name(),
                cost
            );
        }
    }
    assert!(
        comparisons >= 32,
        "only {comparisons} strict colorings compared"
    );
}

#[test]
fn derivations_replay_on_every_small_entry() {
    // Machine-checkability: every certificate's stored derivation must
    // re-derive its own value from the instance alone.
    for entry in &Corpus::small() {
        let inst = &entry.instance;
        for k in [2usize, 3] {
            for cert in &best_lower_bound(inst, k).certificates {
                let replayed = cert
                    .derivation
                    .replay(inst, k)
                    .unwrap_or_else(|e| panic!("{} k={k} `{}`: {e}", entry.name, cert.certifier));
                assert!(
                    (replayed - cert.value).abs() <= tol(cert.value),
                    "{} k={k} `{}`: value {} vs replay {}",
                    entry.name,
                    cert.certifier,
                    cert.value,
                    replayed
                );
            }
        }
    }
}

#[test]
fn bounds_are_identical_under_both_scratch_policies() {
    // The certifiers never touch the scratch workspaces, and that is a
    // contract: certification must be bit-identical whether the ambient
    // mode is the pooled hot path or the transient reference path (a
    // certifier that silently depended on workspace state could drift
    // between CI's test run and the bench run).
    for entry in Corpus::small().entries().iter().take(6) {
        let inst = &entry.instance;
        for k in [2usize, 3] {
            let reuse = with_scratch_mode(ScratchPolicy::Reuse, || best_lower_bound(inst, k));
            let transient =
                with_scratch_mode(ScratchPolicy::Transient, || best_lower_bound(inst, k));
            assert_eq!(
                reuse.certificates.len(),
                transient.certificates.len(),
                "{} k={k}: certifier sets differ across scratch policies",
                entry.name
            );
            for (a, b) in reuse.certificates.iter().zip(&transient.certificates) {
                assert_eq!(a.certifier, b.certifier, "{} k={k}", entry.name);
                assert_eq!(
                    a.value.to_bits(),
                    b.value.to_bits(),
                    "{} k={k} `{}`: {} (Reuse) vs {} (Transient)",
                    entry.name,
                    a.certifier,
                    a.value,
                    b.value
                );
            }
        }
    }
}

#[test]
fn structure_bounds_are_tight_on_recognized_families() {
    // Hypercubes at k = 2 with uniform weights: Harper's inequality
    // certifies the bisection width exactly, so the certified gap of the
    // *optimal* coloring is 1.
    for d in [3usize, 4] {
        let g = hypercube(d);
        let (n, m) = (g.num_vertices(), g.num_edges());
        let inst = Instance::new(g, vec![1.0; m], vec![1.0; n]).unwrap();
        let lower = best_lower_bound(&inst, 2).value();
        assert_eq!(lower, (1usize << (d - 1)) as f64, "Q_{d} bisection width");
        let opt = exact_min_max_boundary(&inst, 2).unwrap().max_boundary;
        assert_eq!(CertifiedGap::new(lower, opt, "structure").ratio, 1.0);
    }
    // Unit paths at k = 2: one cut edge is both necessary and
    // sufficient.
    let inst = Instance::new(path(12), vec![1.0; 11], vec![1.0; 12]).unwrap();
    let lower = best_lower_bound(&inst, 2).value();
    assert_eq!(lower, 1.0);
    assert_eq!(exact_min_max_boundary(&inst, 2).unwrap().max_boundary, 1.0);
}

#[test]
fn solve_certified_threads_the_gap_into_the_report() {
    for entry in Corpus::quick().entries().iter().take(4) {
        let inst = &entry.instance;
        let solver = Solver::for_instance(inst).classes(entry.k).build().unwrap();
        let plain = solver.solve();
        assert!(plain.certified.is_none(), "plain solve must not certify");
        let report = solver.solve_certified();
        let gap = report
            .certified
            .as_ref()
            .expect("certified solve carries a gap");
        assert_eq!(gap.upper, report.max_boundary, "{}", entry.name);
        assert!(gap.lower > 0.0, "{}: trivial bound", entry.name);
        assert!(gap.lower <= gap.upper + tol(gap.upper), "{}", entry.name);
        assert!(
            gap.ratio.is_finite() && gap.ratio >= 1.0 - 1e-9,
            "{}",
            entry.name
        );
        assert!(
            !gap.certifier.is_empty() && gap.certifier != "none",
            "{}",
            entry.name
        );
        // The free function agrees with the threaded result.
        let direct = certify(inst, entry.k, report.max_boundary);
        assert_eq!(
            direct.lower.to_bits(),
            gap.lower.to_bits(),
            "{}",
            entry.name
        );
        assert_eq!(direct.certifier, gap.certifier, "{}", entry.name);
        // Certification must not perturb the solve itself.
        assert_eq!(plain.coloring, report.coloring, "{}", entry.name);
    }
}

#[test]
fn certified_gap_composes_with_custom_configs() {
    // A Transient-policy solver certifies the same lower bound as the
    // default — the gap engine sits entirely off the scratch machinery.
    let corpus = Corpus::quick();
    let entry = corpus.entries().first().unwrap();
    let inst = &entry.instance;
    let transient_cfg = PipelineConfig {
        scratch: ScratchPolicy::Transient,
        ..PipelineConfig::default()
    };
    let a = Solver::for_instance(inst)
        .classes(entry.k)
        .build()
        .unwrap()
        .solve_certified();
    let b = Solver::for_instance(inst)
        .classes(entry.k)
        .config(transient_cfg)
        .build()
        .unwrap()
        .solve_certified();
    let (ga, gb) = (a.certified.unwrap(), b.certified.unwrap());
    assert_eq!(ga.lower.to_bits(), gb.lower.to_bits());
    assert_eq!(ga.certifier, gb.certifier);
    assert_eq!(a.coloring, b.coloring);
}
