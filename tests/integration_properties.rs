//! Cross-crate property tests: the headline invariants hold for random
//! instances, weights, k, and splitter choices.

use mmb_core::prelude::*;
use mmb_core::strict::binpack2;
use mmb_graph::gen::grid::GridGraph;
use mmb_graph::gen::tree::random_tree;
use mmb_graph::{Coloring, VertexSet};
use mmb_splitters::adversarial::AdversarialSplitter;
use mmb_splitters::grid::GridSplitter;
use mmb_splitters::tree::TreeSplitter;
use proptest::prelude::*;

fn arb_weights(n: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.0f64..20.0, n..=n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn pipeline_always_strict_on_grids(
        side in 4usize..12,
        k in 1usize..12,
        seed in any::<u64>(),
    ) {
        let grid = GridGraph::lattice(&[side, side]);
        let n = grid.graph.num_vertices();
        let costs: Vec<f64> = (0..grid.graph.num_edges())
            .map(|e| 0.5 + ((e as u64 ^ seed) % 7) as f64)
            .collect();
        let sp = GridSplitter::new(&grid, &costs);
        let weights: Vec<f64> = (0..n)
            .map(|v| ((seed >> (v % 53)) & 15) as f64 + 0.1)
            .collect();
        let d = decompose(&grid.graph, &costs, &weights, k, &sp, &[], &PipelineConfig::default())
            .unwrap();
        prop_assert!(d.coloring.is_total());
        prop_assert!(
            d.coloring.is_strictly_balanced(&weights),
            "defect {}", d.strict_defect
        );
    }

    #[test]
    fn pipeline_always_strict_on_trees(
        n in 5usize..150,
        k in 1usize..10,
        seed in any::<u64>(),
        weights in arb_weights(150),
    ) {
        let g = random_tree(n, 3, seed);
        let costs: Vec<f64> = (0..g.num_edges()).map(|e| 1.0 + (e % 3) as f64).collect();
        let sp = TreeSplitter::new(&g);
        let w = &weights[..n];
        let d = decompose(&g, &costs, w, k, &sp, &[], &PipelineConfig::default()).unwrap();
        prop_assert!(d.coloring.is_strictly_balanced(w));
    }

    #[test]
    fn pipeline_strict_under_adversarial_splitter(
        side in 4usize..10,
        k in 2usize..8,
        salt in any::<u64>(),
    ) {
        let grid = GridGraph::lattice(&[side, side]);
        let n = grid.graph.num_vertices();
        let costs = vec![1.0; grid.graph.num_edges()];
        let sp = AdversarialSplitter::new(n, salt);
        let weights: Vec<f64> = (0..n).map(|v| 1.0 + ((v as u64 * 2654435761) % 9) as f64).collect();
        let d = decompose(&grid.graph, &costs, &weights, k, &sp, &[], &PipelineConfig::default())
            .unwrap();
        prop_assert!(d.coloring.is_strictly_balanced(&weights));
    }

    #[test]
    fn binpack2_fixes_any_total_coloring(
        side in 3usize..10,
        k in 2usize..10,
        seed in any::<u64>(),
        weights in arb_weights(100),
    ) {
        let grid = GridGraph::lattice(&[side, side]);
        let n = grid.graph.num_vertices();
        let costs = vec![1.0; grid.graph.num_edges()];
        let sp = GridSplitter::new(&grid, &costs);
        let domain = VertexSet::full(n);
        let w = &weights[..n];
        // Arbitrary (usually terrible) starting coloring.
        let chi = Coloring::from_fn(n, k, |v| ((seed >> (v % 48)) % k as u64) as u32);
        let out = binpack2(&grid.graph, &sp, &chi, &domain, w);
        prop_assert!(out.is_total_on(&domain));
        prop_assert!(
            out.is_strictly_balanced(w),
            "defect {}", out.strict_balance_defect(w)
        );
    }

    #[test]
    fn boundary_costs_conserve_total(
        side in 4usize..10,
        k in 2usize..8,
    ) {
        // Σ_i ∂χ⁻¹(i) = 2 × (cost of bichromatic edges) for every pipeline
        // output — a consistency check across the Coloring plumbing.
        let grid = GridGraph::lattice(&[side, side]);
        let n = grid.graph.num_vertices();
        let costs: Vec<f64> = (0..grid.graph.num_edges()).map(|e| 1.0 + (e % 2) as f64).collect();
        let sp = GridSplitter::new(&grid, &costs);
        let weights = vec![1.0; n];
        let d = decompose(&grid.graph, &costs, &weights, k, &sp, &[], &PipelineConfig::default())
            .unwrap();
        let per_class: f64 = d.boundary_costs.iter().sum();
        let bichromatic: f64 = grid.graph.edge_list().iter().enumerate()
            .filter(|(_, (u, v))| d.coloring.get(*u) != d.coloring.get(*v))
            .map(|(e, _)| costs[e])
            .sum();
        prop_assert!((per_class - 2.0 * bichromatic).abs() < 1e-6);
    }
}
