//! Integration tests of the `Instance`/`Solver` API (and its equivalence
//! with the legacy `decompose` wrapper).
//!
//! Covers the redesign's contract points:
//! * `Solver::solve` and legacy `decompose` produce *identical* colorings
//!   on random instances (property test — the wrapper changes no
//!   behavior);
//! * `SplitterChoice::Auto` picks the expected family on grid / tree /
//!   path / arbitrary inputs;
//! * a built `Solver` reuses its constructed splitter across `solve()`
//!   calls (constructions counted, calls recorded);
//! * `Box<dyn Splitter>` / `Arc<dyn Splitter>` work end to end through
//!   `decompose` (trait-object story);
//! * builder/validation errors surface as typed `SolveError`s.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use mmb_core::api::{solve_many, Instance, SolveError, Solver, SplitterChoice};
use mmb_core::pipeline::{decompose, PipelineConfig, ScratchPolicy};
use mmb_graph::gen::grid::GridGraph;
use mmb_graph::gen::misc::path;
use mmb_graph::gen::tree::random_tree;
use mmb_graph::{VertexId, VertexSet};
use mmb_splitters::grid::GridSplitter;
use mmb_splitters::recording::RecordingSplitter;
use mmb_splitters::tree::TreeSplitter;
use mmb_splitters::Splitter;
use proptest::prelude::*;

fn det_costs(m: usize, seed: u64) -> Vec<f64> {
    (0..m)
        .map(|e| 0.5 + ((e as u64 ^ seed) % 7) as f64)
        .collect()
}

fn det_weights(n: usize, seed: u64) -> Vec<f64> {
    (0..n)
        .map(|v| 1.0 + ((seed >> (v % 53)) & 15) as f64)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    // The tentpole equivalence: the legacy wrapper and a Solver built on
    // the same instance produce the *same coloring*, bit for bit — across
    // the workspace (`ScratchPolicy::Reuse`), the pre-overhaul allocating
    // reference (`ScratchPolicy::Transient`), the batch `solve_many`
    // entry point, and every thread count of the parallel shim.
    #[test]
    fn solver_matches_decompose_on_random_grids(
        side in 4usize..11,
        k in 1usize..10,
        seed in any::<u64>(),
    ) {
        let grid = GridGraph::lattice(&[side, side]);
        let costs = det_costs(grid.graph.num_edges(), seed);
        let weights = det_weights(grid.graph.num_vertices(), seed);
        let sp = GridSplitter::new(&grid, &costs);
        let legacy = decompose(
            &grid.graph, &costs, &weights, k, &sp, &[], &PipelineConfig::default(),
        )
        .unwrap();
        let inst = Instance::from_grid(grid.clone(), costs, weights).unwrap();
        let report = Solver::for_instance(&inst).classes(k).build().unwrap().solve();
        prop_assert_eq!(&report.coloring, &legacy.coloring);
        prop_assert!(report.is_strictly_balanced());

        // Workspace path ≡ allocating reference path.
        let transient_cfg = PipelineConfig {
            scratch: ScratchPolicy::Transient,
            ..PipelineConfig::default()
        };
        let transient = Solver::for_instance(&inst)
            .classes(k)
            .config(transient_cfg.clone())
            .build()
            .unwrap()
            .solve();
        prop_assert_eq!(&transient.coloring, &legacy.coloring);

        // solve_many ≡ one-at-a-time solve, for 1 and several worker
        // threads (the shim's deterministic chunked schedule).
        let batch = [inst];
        for threads in [1usize, 3] {
            let results = rayon::with_num_threads(threads, || {
                solve_many(&batch, k, &PipelineConfig::default())
            });
            prop_assert_eq!(results.len(), 1);
            let got = results.into_iter().next().unwrap().unwrap();
            prop_assert_eq!(&got.coloring, &legacy.coloring, "threads = {}", threads);
        }
    }

    #[test]
    fn solver_matches_decompose_on_random_trees(
        n in 5usize..120,
        k in 1usize..8,
        seed in any::<u64>(),
    ) {
        let g = random_tree(n, 3, seed);
        let costs = det_costs(g.num_edges(), seed);
        let weights = det_weights(n, seed);
        let sp = TreeSplitter::new(&g);
        let legacy = decompose(&g, &costs, &weights, k, &sp, &[], &PipelineConfig::default())
            .unwrap();
        let inst = Instance::new(g, costs, weights).unwrap();
        let report = Solver::for_instance(&inst).classes(k).build().unwrap().solve();
        prop_assert_eq!(&report.coloring, &legacy.coloring);
    }
}

#[test]
fn auto_selects_gridsplit_on_lattices() {
    // Plain Graph, no geometry attached: detection must reconstruct it.
    let grid = GridGraph::lattice(&[9, 7]);
    let n = grid.graph.num_vertices();
    let m = grid.graph.num_edges();
    let weights: Vec<f64> = (0..n).map(|v| 1.0 + (v % 3) as f64).collect();
    let inst = Instance::new(grid.graph, vec![1.0; m], weights.clone()).unwrap();
    let solver = Solver::for_instance(&inst).classes(5).build().unwrap();
    assert_eq!(solver.family(), "grid");
    assert_eq!(solver.splitter_name(), "gridsplit");
    assert!(solver.solve().is_strictly_balanced());
}

#[test]
fn auto_selects_tree_splitter_on_forests() {
    let g = random_tree(150, 4, 11);
    let n = g.num_vertices();
    let costs: Vec<f64> = (0..g.num_edges()).map(|e| 1.0 + (e % 3) as f64).collect();
    let inst = Instance::new(g, costs, vec![1.0; n]).unwrap();
    let solver = Solver::for_instance(&inst).classes(6).build().unwrap();
    assert_eq!(solver.family(), "forest");
    assert_eq!(solver.splitter_name(), "tree");
    assert!(solver.solve().is_strictly_balanced());
}

#[test]
fn auto_selects_order_splitter_on_paths() {
    let g = path(40);
    let inst = Instance::new(g, vec![1.0; 39], vec![1.0; 40]).unwrap();
    let solver = Solver::for_instance(&inst).classes(4).build().unwrap();
    assert_eq!(solver.family(), "path");
    assert_eq!(solver.splitter_name(), "order/path");
    let report = solver.solve();
    assert!(report.is_strictly_balanced());
    // A path split into 4 strictly balanced classes by position prefixes
    // cuts very few edges; the order splitter must exploit the structure.
    assert!(
        report.max_boundary <= 6.0,
        "path boundary {}",
        report.max_boundary
    );
}

#[test]
fn auto_falls_back_to_bfs_on_arbitrary_graphs() {
    // Cycle with chords: not a path, not a forest, not a lattice.
    let mut b = mmb_graph::GraphBuilder::new(30);
    for v in 0..30u32 {
        b.add_edge(v, (v + 1) % 30);
        if v % 5 == 0 {
            b.add_edge(v, (v + 15) % 30);
        }
    }
    let g = b.build();
    let m = g.num_edges();
    let weights: Vec<f64> = (0..30).map(|v| 1.0 + (v % 4) as f64).collect();
    let inst = Instance::new(g, vec![1.0; m], weights).unwrap();
    let solver = Solver::for_instance(&inst).classes(3).build().unwrap();
    assert_eq!(solver.family(), "arbitrary");
    assert_eq!(solver.splitter_name(), "bfs");
    assert!(solver.solve().is_strictly_balanced());
}

/// GridSplit wrapper that counts constructions — the reuse test's probe.
struct CountingSplitter<'g> {
    inner: GridSplitter<'g>,
}

static CONSTRUCTIONS: AtomicUsize = AtomicUsize::new(0);

impl<'g> CountingSplitter<'g> {
    fn new(grid: &'g GridGraph, costs: &[f64]) -> Self {
        CONSTRUCTIONS.fetch_add(1, Ordering::SeqCst);
        Self {
            inner: GridSplitter::new(grid, costs),
        }
    }
}

impl Splitter for CountingSplitter<'_> {
    fn split(&self, w_set: &VertexSet, weights: &[f64], target: f64) -> VertexSet {
        self.inner.split(w_set, weights, target)
    }
    fn name(&self) -> &str {
        "counting"
    }
}

#[test]
fn built_solver_reuses_its_splitter_across_solves() {
    let grid = GridGraph::lattice(&[12, 12]);
    let n = grid.graph.num_vertices();
    let costs = vec![1.0; grid.graph.num_edges()];
    let weights: Vec<f64> = (0..n).map(|v| 1.0 + (v % 5) as f64).collect();

    // One construction, recorded; every split call lands on this object.
    let counting = CountingSplitter::new(&grid, &costs);
    let rec = RecordingSplitter::new(counting, &grid.graph, &costs);
    let inst = Instance::from_grid(grid.clone(), costs.clone(), weights.clone()).unwrap();
    let solver = Solver::for_instance(&inst)
        .classes(6)
        .splitter(SplitterChoice::Custom(Box::new(&rec)))
        .build()
        .unwrap();

    let first = solver.solve();
    let calls_after_first = rec.stats().calls;
    assert!(calls_after_first > 0, "solve must exercise the splitter");

    let second = solver.solve();
    let calls_after_second = rec.stats().calls;
    assert!(
        calls_after_second > calls_after_first,
        "second solve must reuse the same splitter instance"
    );
    // Exactly one splitter was ever constructed for the two solves.
    assert_eq!(CONSTRUCTIONS.load(Ordering::SeqCst), 1);
    // Reuse is deterministic: both solves give the same coloring.
    assert_eq!(first.coloring, second.coloring);
    assert!(first.is_strictly_balanced() && second.is_strictly_balanced());
}

#[test]
fn boxed_and_arc_splitters_run_through_decompose() {
    let grid = GridGraph::lattice(&[8, 8]);
    let costs = vec![1.0; grid.graph.num_edges()];
    let weights = vec![1.0; 64];
    let cfg = PipelineConfig::default();

    let boxed: Box<dyn Splitter + '_> = Box::new(GridSplitter::new(&grid, &costs));
    // S = Box<dyn Splitter> (the Box blanket impl)…
    let d_box = decompose(&grid.graph, &costs, &weights, 4, &boxed, &[], &cfg).unwrap();
    // …and S = dyn Splitter (unsized) directly.
    let d_dyn = decompose(&grid.graph, &costs, &weights, 4, boxed.as_ref(), &[], &cfg).unwrap();

    // `Arc<T>: Sync` needs `T: Send`, so an `Arc`-boxed trait-object
    // splitter names `Send` too (all concrete splitters qualify).
    let arc: Arc<dyn Splitter + Send + '_> = Arc::new(GridSplitter::new(&grid, &costs));
    let d_arc = decompose(&grid.graph, &costs, &weights, 4, &arc, &[], &cfg).unwrap();

    assert!(d_box.coloring.is_strictly_balanced(&weights));
    assert_eq!(d_box.coloring, d_dyn.coloring);
    assert_eq!(d_box.coloring, d_arc.coloring);
}

#[test]
fn builder_errors_are_typed() {
    let grid = GridGraph::lattice(&[4, 4]);
    let m = grid.graph.num_edges();
    let inst = Instance::from_grid(grid, vec![1.0; m], vec![1.0; 16]).unwrap();
    // Unset (or zero) classes.
    assert_eq!(
        Solver::for_instance(&inst).build().unwrap_err(),
        SolveError::ZeroColors
    );
    // Tree splitter on a cyclic instance.
    assert_eq!(
        Solver::for_instance(&inst)
            .classes(2)
            .splitter(SplitterChoice::Tree)
            .build()
            .unwrap_err(),
        SolveError::SplitterUnavailable {
            requested: "tree",
            structure: "grid"
        }
    );
    // Grid splitter without geometry.
    let tree = random_tree(20, 3, 1);
    let m = tree.num_edges();
    let tree_inst = Instance::new(tree, vec![1.0; m], vec![1.0; 20]).unwrap();
    assert_eq!(
        Solver::for_instance(&tree_inst)
            .classes(2)
            .splitter(SplitterChoice::Grid)
            .build()
            .unwrap_err(),
        SolveError::SplitterUnavailable {
            requested: "grid",
            structure: "forest"
        }
    );
    // Invalid splittability exponent is a typed error, not a panic.
    for bad_p in [0.5, f64::NAN, f64::INFINITY] {
        assert!(matches!(
            Solver::for_instance(&tree_inst)
                .classes(2)
                .p(bad_p)
                .build()
                .unwrap_err(),
            SolveError::InvalidExponent { .. }
        ));
    }
}

#[test]
fn tree_choice_works_on_acyclic_grid_hosted_instances() {
    // A straight line of lattice points is a grid *and* a forest; the Tree
    // choice must go by actual acyclicity, not the "grid" family label.
    let pts: Vec<Vec<i64>> = (0..12).map(|x| vec![x, 0]).collect();
    let line = GridGraph::from_points(2, pts);
    let n = line.graph.num_vertices();
    let m = line.graph.num_edges();
    let inst = Instance::from_grid(line, vec![1.0; m], vec![1.0; n]).unwrap();
    assert_eq!(inst.family(), "grid");
    let solver = Solver::for_instance(&inst)
        .classes(3)
        .splitter(SplitterChoice::Tree)
        .build()
        .unwrap();
    assert_eq!(solver.splitter_name(), "tree");
    assert!(solver.solve().is_strictly_balanced());
}

#[test]
fn explicit_choices_and_auto_agree_where_applicable() {
    // On a path instance, Auto picks the walk order; the generic
    // Order/Bfs choices still deliver strictness.
    let g = path(30);
    let inst = Instance::new(g, vec![1.0; 29], vec![1.0; 30]).unwrap();
    for choice in [
        SplitterChoice::Auto,
        SplitterChoice::Order,
        SplitterChoice::Bfs,
    ] {
        let solver = Solver::for_instance(&inst)
            .classes(3)
            .splitter(choice)
            .build()
            .unwrap();
        assert!(solver.solve().is_strictly_balanced());
    }
    // Tree choice also applies (a path is a forest).
    let solver = Solver::for_instance(&inst)
        .classes(3)
        .splitter(SplitterChoice::Tree)
        .build()
        .unwrap();
    assert_eq!(solver.splitter_name(), "tree");
    assert!(solver.solve().is_strictly_balanced());
}

#[test]
fn extra_measures_ride_the_instance() {
    let grid = GridGraph::lattice(&[12, 12]);
    let n = grid.graph.num_vertices();
    let m = grid.graph.num_edges();
    let mem: Vec<f64> = (0..n as u32)
        .map(|v| if grid.coord(v)[0] < 3 { 6.0 } else { 0.5 })
        .collect();
    let inst = Instance::from_grid(grid, vec![1.0; m], vec![1.0; n])
        .unwrap()
        .with_extra_measure(mem.clone())
        .unwrap();
    let report = Solver::for_instance(&inst)
        .classes(6)
        .build()
        .unwrap()
        .solve();
    assert!(report.is_strictly_balanced());
    let cm = report.coloring.class_measures(&mem);
    let avg: f64 = mem.iter().sum::<f64>() / 6.0;
    let max = cm.iter().cloned().fold(0.0, f64::max);
    assert!(
        max <= 12.0 * avg + 64.0 * mem.iter().cloned().fold(0.0, f64::max),
        "extra measure unbalanced: {max} vs avg {avg}"
    );
}

#[test]
fn report_class_table_is_consistent() {
    let grid = GridGraph::lattice(&[8, 8]);
    let m = grid.graph.num_edges();
    let weights: Vec<f64> = (0..64).map(|v| 1.0 + (v % 2) as f64).collect();
    let inst = Instance::from_grid(grid, vec![1.0; m], weights.clone()).unwrap();
    let report = Solver::for_instance(&inst)
        .classes(4)
        .build()
        .unwrap()
        .solve();
    let table = report.class_table();
    assert_eq!(table.len(), 4);
    let total_w: f64 = table.iter().map(|r| r.weight).sum();
    assert!((total_w - weights.iter().sum::<f64>()).abs() < 1e-9);
    for (i, row) in table.iter().enumerate() {
        assert_eq!(row.class, i);
        assert!((row.boundary_cost - report.boundary_costs[i]).abs() < 1e-12);
    }
    // Stage data is present and total.
    assert!(report.stages.multibalanced.is_total());
    assert!(report.stages.almost_strict.is_total());
}

#[test]
fn solve_many_matches_individual_solves_across_families() {
    // A mixed stream — grid, tree, path — through the batch entry point,
    // at several thread counts: results in input order, colorings
    // bit-identical to one-at-a-time solves, and the workspace pool
    // amortized per worker.
    let grid = GridGraph::lattice(&[9, 9]);
    let gm = grid.graph.num_edges();
    let tree = random_tree(70, 3, 5);
    let tm = tree.num_edges();
    let line = path(40);
    let instances = vec![
        Instance::from_grid(grid, det_costs(gm, 3), det_weights(81, 3)).unwrap(),
        Instance::new(tree, det_costs(tm, 4), det_weights(70, 4)).unwrap(),
        Instance::new(line, det_costs(39, 5), det_weights(40, 5)).unwrap(),
    ];
    let k = 4;
    let cfg = PipelineConfig::default();
    let reference: Vec<_> = instances
        .iter()
        .map(|inst| {
            Solver::for_instance(inst)
                .classes(k)
                .build()
                .unwrap()
                .solve()
                .coloring
        })
        .collect();
    for threads in [1usize, 2, 4] {
        let batch = rayon::with_num_threads(threads, || solve_many(&instances, k, &cfg));
        assert_eq!(batch.len(), instances.len());
        for (i, (got, want)) in batch.iter().zip(&reference).enumerate() {
            let got = got.as_ref().expect("valid instance");
            assert_eq!(&got.coloring, want, "instance {i}, threads {threads}");
            assert!(got.is_strictly_balanced());
        }
    }
    // Build failures surface per item, not as a panic.
    let errs = solve_many(&instances, 0, &cfg);
    assert!(errs
        .iter()
        .all(|r| matches!(r, Err(SolveError::ZeroColors))));
}

#[test]
fn report_records_stage_timings() {
    let grid = GridGraph::lattice(&[8, 8]);
    let m = grid.graph.num_edges();
    let inst = Instance::from_grid(grid, vec![1.0; m], vec![1.0; 64]).unwrap();
    let report = Solver::for_instance(&inst)
        .classes(4)
        .build()
        .unwrap()
        .solve();
    assert!(report
        .stage_millis
        .iter()
        .all(|&ms| ms.is_finite() && ms >= 0.0));
    assert!(report.stage_millis.iter().sum::<f64>() > 0.0);
}

fn _object_safety_probe(s: &dyn Splitter) -> &str {
    // Compile-time proof that Splitter stays object safe.
    s.name()
}

#[test]
fn corpus_solver_reuse_matches_fresh_builds() {
    // Solver-reuse regression over the whole corpus: for every entry of
    // every family, one amortized Solver solved repeatedly produces
    // colorings bit-identical to solvers built fresh per call — across
    // all eight graph families and both weight/cost profiles, under both
    // scratch policies.
    let corpus = mmb_instances::corpus::Corpus::quick();
    for family in corpus.families() {
        for entry in corpus.family_entries(family) {
            let inst = &entry.instance;
            let amortized = Solver::for_instance(inst).classes(entry.k).build().unwrap();
            let first = amortized.solve();
            for round in 0..2 {
                let reused = amortized.solve();
                assert_eq!(
                    reused.coloring, first.coloring,
                    "{}: reuse round {round} diverged",
                    entry.name
                );
                let fresh = Solver::for_instance(inst)
                    .classes(entry.k)
                    .build()
                    .unwrap()
                    .solve();
                assert_eq!(
                    fresh.coloring, first.coloring,
                    "{}: fresh build round {round} diverged",
                    entry.name
                );
            }
            // The allocating reference path agrees too.
            let transient = Solver::for_instance(inst)
                .classes(entry.k)
                .config(PipelineConfig {
                    scratch: ScratchPolicy::Transient,
                    ..PipelineConfig::default()
                })
                .build()
                .unwrap()
                .solve();
            assert_eq!(
                transient.coloring, first.coloring,
                "{}: transient diverged",
                entry.name
            );
            assert!(first.is_strictly_balanced(), "{}", entry.name);
        }
    }
}

#[test]
fn corpus_families_resolve_expected_splitters() {
    // The auto-splitter resolves the corpus families sensibly: lattices
    // and hypercubes get GridSplit, attachment trees get the forest
    // splitter, and the non-embeddable families fall back to BFS.
    let corpus = mmb_instances::corpus::Corpus::quick();
    for entry in &corpus {
        let solver = Solver::for_instance(&entry.instance)
            .classes(entry.k)
            .build()
            .unwrap();
        match entry.family {
            "grid" | "hypercube" => assert_eq!(solver.family(), "grid", "{}", entry.name),
            "tree" => assert_eq!(solver.family(), "forest", "{}", entry.name),
            "torus" | "ws" | "sbm" => {
                assert_eq!(solver.family(), "arbitrary", "{}", entry.name)
            }
            _ => {} // pa (attach = 2) and rgg depend on the draw
        }
    }
}

#[test]
fn path_positions_used_by_auto_follow_the_walk() {
    // A path given with scrambled vertex ids: Auto must still order by the
    // walk, not by id, and pay at most one cut edge per class boundary.
    let n = 24usize;
    let scramble = |v: usize| ((v * 7) % n) as VertexId;
    let mut b = mmb_graph::GraphBuilder::new(n);
    for v in 0..n - 1 {
        b.add_edge(scramble(v), scramble(v + 1));
    }
    let g = b.build();
    let m = g.num_edges();
    let inst = Instance::new(g, vec![1.0; m], vec![1.0; n]).unwrap();
    let solver = Solver::for_instance(&inst).classes(4).build().unwrap();
    assert_eq!(solver.family(), "path");
    let report = solver.solve();
    assert!(report.is_strictly_balanced());
    assert!(
        report.max_boundary <= 6.0,
        "scrambled path boundary {}",
        report.max_boundary
    );
}

/// PR-2-style construction accounting, extended to recognition: explicit
/// splitter choices must not pay the `recognize()` scan at all — the
/// whole point of caching a recognition verdict in `SolverArtifacts` is
/// that construction phases are separable and individually skippable.
#[test]
fn explicit_splitter_choices_skip_recognition() {
    use mmb_core::api::SolverCache;
    use mmb_graph::recognize::recognition_count;
    use mmb_splitters::bfs::BfsSplitter;

    // Plain-graph instance (no `GridGraph` handle attached): recognition
    // is the only way to *detect* the lattice, so any recognition this
    // test observes is attributable to the solver build under test.
    let grid = GridGraph::lattice(&[10, 10]);
    let costs = det_costs(grid.graph.num_edges(), 11);
    let weights = det_weights(grid.graph.num_vertices(), 12);
    let inst = Instance::new(grid.graph.clone(), costs.clone(), weights.clone()).unwrap();

    // Explicit Order / Bfs: zero recognitions across build + solve.
    for (choice, label) in [
        (SplitterChoice::Order, "order"),
        (SplitterChoice::Bfs, "bfs"),
    ] {
        let before = recognition_count();
        let solver = Solver::for_instance(&inst)
            .classes(4)
            .splitter(choice)
            .build()
            .unwrap();
        assert!(solver.solve().is_strictly_balanced());
        assert_eq!(
            recognition_count(),
            before,
            "explicit {label} splitter must skip recognition"
        );
    }

    // Custom: the caller brought their own splitter; recognizing anyway
    // would be pure waste.
    {
        let before = recognition_count();
        let solver = Solver::for_instance(&inst)
            .classes(4)
            .splitter(SplitterChoice::Custom(Box::new(BfsSplitter::new(
                inst.graph(),
            ))))
            .build()
            .unwrap();
        assert!(solver.solve().is_strictly_balanced());
        assert_eq!(
            recognition_count(),
            before,
            "custom splitter must skip recognition"
        );
    }

    // Tree: eligibility is a plain acyclicity check (`components()`),
    // not a full recognition scan.
    {
        let tree = random_tree(60, 3, 7);
        let tw = det_weights(60, 13);
        let tc = det_costs(tree.num_edges(), 14);
        let tinst = Instance::new(tree, tc, tw).unwrap();
        let before = recognition_count();
        let solver = Solver::for_instance(&tinst)
            .classes(3)
            .splitter(SplitterChoice::Tree)
            .build()
            .unwrap();
        assert!(solver.solve().is_strictly_balanced());
        assert_eq!(
            recognition_count(),
            before,
            "tree eligibility must not run recognition"
        );
    }

    // Auto: recognition runs exactly once, and the verdict is memoized on
    // the instance — a second build (even at a different k) reuses it.
    {
        let before = recognition_count();
        let s1 = Solver::for_instance(&inst).classes(4).build().unwrap();
        assert!(s1.solve().is_strictly_balanced());
        assert_eq!(recognition_count(), before + 1, "auto recognizes once");
        let s2 = Solver::for_instance(&inst).classes(5).build().unwrap();
        assert!(s2.solve().is_strictly_balanced());
        assert_eq!(
            recognition_count(),
            before + 1,
            "rebuild must reuse the memoized verdict"
        );
    }

    // Artifact warm start: a *fresh* identical instance built from cached
    // artifacts inherits the recognition verdict and pays nothing.
    {
        let mut cache = SolverCache::new(1);
        let (artifacts, _) = cache.get_or_compute(&inst, 2.0);
        let fresh = Instance::new(grid.graph.clone(), costs, weights).unwrap();
        let before = recognition_count();
        let solver = Solver::for_instance(&fresh)
            .classes(4)
            .artifacts(artifacts)
            .build()
            .unwrap();
        assert!(solver.solve().is_strictly_balanced());
        assert_eq!(
            recognition_count(),
            before,
            "artifact-seeded build must skip recognition on a fresh instance"
        );
    }
}
