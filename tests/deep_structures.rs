//! Stack-depth regression: million-vertex path graphs.
//!
//! A path is the worst case for anything that walks vertex-by-vertex with
//! call-stack recursion — at `n = 10^6` even a tiny frame overflows the
//! default 2 MiB test-thread stack thousands of frames in. Everything on
//! the large-`n` path (component labeling, the centroid machinery, the
//! `Split` descent, the coarsening cascade) is required to run on explicit
//! worklists instead; this test pins that by running them all inside a
//! deliberately *small* (1 MiB) thread stack, so any regression back to
//! vertex-scaled recursion fails deterministically rather than only on
//! machines with small defaults.

use mmb_core::coarsen::{CoarsenParams, CoarseningFront};
use mmb_graph::gen::misc::path;
use mmb_graph::VertexSet;
use mmb_splitters::separator::{SeparatorSplitter, TreeCentroidSeparator};
use mmb_splitters::Splitter;

const N: usize = 1_000_000;

/// Run `f` on a 1 MiB stack; propagates panics.
fn on_small_stack(f: impl FnOnce() + Send + 'static) {
    std::thread::Builder::new()
        .stack_size(1 << 20)
        .spawn(f)
        .unwrap()
        .join()
        .unwrap();
}

#[test]
fn million_vertex_path_components_and_split() {
    on_small_stack(|| {
        let g = path(N);
        let (comp, t) = g.components();
        assert_eq!(t, 1);
        assert!(comp.iter().all(|&c| c == 0));

        // The Split descent on a forest provider: the former recursive
        // formulation grew one frame per descent level and allowed up to
        // 64 + 2n levels before its own guard fired.
        let costs = vec![1.0; g.num_edges()];
        let weights = vec![1.0; N];
        let sp = SeparatorSplitter::new(&g, &costs, TreeCentroidSeparator::new(&g), 2.0);
        let w = VertexSet::full(N);
        let u = sp.split(&w, &weights, N as f64 / 2.0);
        let wu = u.len() as f64;
        // The split contract: w(U) ≤ target ≤ w(U) + wmax.
        assert!(
            wu <= N as f64 / 2.0 && N as f64 / 2.0 <= wu + 1.0,
            "w(U) = {wu}"
        );
    });
}

#[test]
fn million_vertex_path_coarsens_without_recursion() {
    on_small_stack(|| {
        let g = path(N);
        let costs = vec![1.0; g.num_edges()];
        let weights = vec![1.0; N];
        let params = CoarsenParams {
            target_vertices: 4096,
            ..Default::default()
        };
        let front = CoarseningFront::build(&g, &costs, &weights, &params);
        let (cg, _cc, cw) = front.coarsest((&g, &costs, &weights));
        assert!(
            cg.num_vertices() <= 4096,
            "coarsest n = {}",
            cg.num_vertices()
        );
        let total: f64 = cw.iter().sum();
        assert!((total - N as f64).abs() < 1e-6, "weight drifted: {total}");
    });
}
