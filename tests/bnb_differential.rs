//! Differential tests for the anytime branch-and-bound solver
//! (`mmb_core::bnb`) against the exact oracle, the pipeline, and itself.
//!
//! The contract under test, per ISSUE 6:
//!
//! * **Exhaustive ≡ oracle.** At unlimited budget the engine *is* the
//!   exact solver (the oracle delegates to it), so on every corpus entry
//!   with n ≤ 16 and k ∈ {2, 3} — plus bespoke instances at n = 12–16,
//!   past the small corpus' sizes — the coloring, the cost (bit for
//!   bit), and the node count must match `exact_min_max_boundary`, with
//!   `proven_optimal` set and a certified ratio of exactly 1.0.
//! * **Never worse than the pipeline.** The incumbent is seeded from
//!   `Theorem4Pipeline`, so at *any* budget — including 0 — the returned
//!   cost is ≤ the pipeline's, corpus-wide.
//! * **Anytime monotonicity.** The stop predicate is checked before a
//!   node is counted, so budgeted runs visit exact prefixes of the
//!   unbudgeted node sequence: growing the budget can only improve the
//!   incumbent, and the certified gap ratio is non-increasing in the
//!   budget.
//! * **Determinism.** Same instance, same budget, same solution — bit
//!   for bit — under both `ScratchPolicy::Reuse` and
//!   `ScratchPolicy::Transient`, and across repeated runs of the
//!   deterministic interrupt hook (a node-count "clock", no wall time).
//! * **Sound truncation.** A budget- or interrupt-truncated run still
//!   returns a valid strictly balanced coloring and a sound certified
//!   gap (`lower ≤ OPT ≤ upper`, with `upper` the incumbent's
//!   recomputable cost).

use mmb_core::api::{Instance, Partitioner, Solver, Theorem4Pipeline};
use mmb_core::bnb::{self, BnbConfig, BnbPartitioner};
use mmb_core::oracle::exact_min_max_boundary;
use mmb_core::pipeline::{PipelineConfig, ScratchPolicy};
use mmb_core::verify::verify_decomposition;
use mmb_graph::gen::lattice::hypercube;
use mmb_graph::gen::misc::{cycle, path};
use mmb_graph::gen::tree::random_tree;
use mmb_graph::Graph;
use mmb_instances::corpus::Corpus;

/// Wrap a bare graph into an instance with deterministic, slightly
/// non-uniform weights (so strict balance is not a trivial constraint)
/// and unit costs.
fn instance(g: Graph) -> Instance {
    let n = g.num_vertices();
    let m = g.num_edges();
    let weights: Vec<f64> = (0..n).map(|i| 1.0 + (i % 3) as f64 * 0.5).collect();
    Instance::new(g, vec![1.0; m], weights).unwrap()
}

/// Bespoke instances between the small corpus' n ≤ 10 and the oracle cap
/// n = 16 — the sizes the corpus does not already cover.
fn mid_size_instances() -> Vec<(String, Instance)> {
    vec![
        ("path-12".into(), instance(path(12))),
        ("cycle-13".into(), instance(cycle(13))),
        ("tree-14".into(), instance(random_tree(14, 3, 21))),
        ("cycle-15".into(), instance(cycle(15))),
        ("hypercube-16".into(), instance(hypercube(4))),
    ]
}

#[test]
fn exhaustive_bnb_is_the_oracle_bit_for_bit() {
    let small = Corpus::small();
    let bespoke = mid_size_instances();
    let mut cases: Vec<(&str, &Instance)> = small
        .entries()
        .iter()
        .filter(|e| e.instance.num_vertices() <= 16)
        .map(|e| (e.name.as_str(), &e.instance))
        .collect();
    cases.extend(bespoke.iter().map(|(name, inst)| (name.as_str(), inst)));
    assert!(
        cases.len() >= 10,
        "differential base too small: {}",
        cases.len()
    );
    for (name, inst) in &cases {
        for k in [2usize, 3] {
            let oracle =
                exact_min_max_boundary(inst, k).unwrap_or_else(|e| panic!("{name} k={k}: {e}"));
            let sol = bnb::solve(inst, k, &BnbConfig::exhaustive()).unwrap();
            assert!(
                sol.proven_optimal,
                "{name} k={k}: exhaustive run not proven"
            );
            assert_eq!(
                sol.coloring, oracle.coloring,
                "{name} k={k}: colorings differ"
            );
            assert_eq!(
                sol.max_boundary.to_bits(),
                oracle.max_boundary.to_bits(),
                "{name} k={k}: costs differ ({} vs {})",
                sol.max_boundary,
                oracle.max_boundary
            );
            assert_eq!(sol.nodes, oracle.nodes, "{name} k={k}: node counts differ");
            assert_eq!(sol.gap.ratio.to_bits(), 1.0f64.to_bits(), "{name} k={k}");
            assert!(
                (sol.gap.lower - sol.gap.upper).abs() == 0.0,
                "{name} k={k}: proven gap must be tight"
            );
        }
    }
}

#[test]
fn incumbent_never_worse_than_the_pipeline_corpus_wide() {
    // A modest budget: enough to search a little everywhere, nowhere
    // near exhaustion on the larger quick-corpus entries.
    let cfg = BnbConfig::with_node_budget(20_000);
    for entry in &Corpus::quick() {
        let inst = &entry.instance;
        let pipe = Theorem4Pipeline::default()
            .partition(inst, entry.k)
            .unwrap();
        let pipe_cost = pipe.max_boundary_cost(inst.graph(), inst.costs());
        let sol = bnb::solve(inst, entry.k, &cfg).unwrap();
        assert!(
            sol.max_boundary <= pipe_cost + 1e-9 * (1.0 + pipe_cost),
            "{}: bnb {} worse than pipeline {}",
            entry.name,
            sol.max_boundary,
            pipe_cost
        );
        // The returned coloring is always a *valid* solution whose cost
        // matches a from-scratch recomputation.
        let report =
            verify_decomposition(inst.graph(), inst.costs(), inst.weights(), &sol.coloring);
        assert!(report.is_valid(), "{}: invalid bnb coloring", entry.name);
        assert!(
            (report.max_boundary - sol.max_boundary).abs() <= 1e-9 * (1.0 + sol.max_boundary),
            "{}: reported {} vs recomputed {}",
            entry.name,
            sol.max_boundary,
            report.max_boundary
        );
        // Sound gap at any budget: lower ≤ upper = achieved cost.
        assert!(
            sol.gap.lower <= sol.gap.upper + 1e-9 * (1.0 + sol.gap.upper),
            "{}: gap lower {} above upper {}",
            entry.name,
            sol.gap.lower,
            sol.gap.upper
        );
        assert_eq!(
            sol.gap.upper.to_bits(),
            sol.max_boundary.to_bits(),
            "{}: gap upper must be the incumbent cost",
            entry.name
        );
    }
}

#[test]
fn certified_gap_is_monotone_non_increasing_in_the_node_budget() {
    // Hard enough that small budgets truncate: the 4-cube at k = 3 with
    // non-uniform weights (the same instance the engine unit tests use
    // for truncation), plus a medium-corpus entry past the oracle cap.
    let hyper = instance(hypercube(4));
    let med = Corpus::medium();
    let e = &med.entries()[0];
    let cases: Vec<(&str, &Instance, usize)> = vec![
        ("hypercube-16", &hyper, 3),
        (e.name.as_str(), &e.instance, e.k),
    ];
    for (name, inst, k) in &cases {
        let budgets = [0u64, 100, 1_000, 10_000, 100_000];
        let mut prev_ratio = f64::INFINITY;
        let mut prev_cost = f64::INFINITY;
        let mut truncated_runs = 0usize;
        for b in budgets {
            let sol = bnb::solve(inst, *k, &BnbConfig::with_node_budget(b)).unwrap();
            assert!(
                sol.nodes <= b,
                "{name} k={k}: visited {} nodes on budget {b}",
                sol.nodes
            );
            assert!(
                sol.max_boundary <= prev_cost + 1e-12,
                "{name} k={k}: incumbent worsened ({} after {prev_cost}) at budget {b}",
                sol.max_boundary
            );
            assert!(
                sol.gap.ratio <= prev_ratio + 1e-12,
                "{name} k={k}: gap ratio worsened ({} after {prev_ratio}) at budget {b}",
                sol.gap.ratio
            );
            prev_cost = sol.max_boundary;
            prev_ratio = sol.gap.ratio;
            if !sol.proven_optimal {
                truncated_runs += 1;
            }
        }
        // The sweep must actually exercise the truncated regime — if
        // every budget already proves optimality the monotonicity claim
        // was never tested.
        assert!(
            truncated_runs >= 2,
            "{name} k={k}: only {truncated_runs} truncated runs in the budget sweep"
        );
    }
}

#[test]
fn budget_zero_returns_exactly_the_pipeline_coloring() {
    for entry in Corpus::small().entries().iter().take(4) {
        let inst = &entry.instance;
        let sol = bnb::solve(inst, entry.k, &BnbConfig::with_node_budget(0)).unwrap();
        let pipe = Theorem4Pipeline::default()
            .partition(inst, entry.k)
            .unwrap();
        assert_eq!(
            sol.coloring, pipe,
            "{}: budget-0 run must return the seed",
            entry.name
        );
        assert_eq!(sol.nodes, 0, "{}", entry.name);
    }
}

#[test]
fn solver_solve_anytime_is_deterministic_under_both_scratch_policies() {
    let solve = |scratch: ScratchPolicy, inst: &Instance, k: usize| {
        let cfg = PipelineConfig {
            scratch,
            ..PipelineConfig::default()
        };
        let solver = Solver::for_instance(inst)
            .classes(k)
            .config(cfg)
            .build()
            .unwrap();
        solver.solve_anytime(&BnbConfig::with_node_budget(5_000))
    };
    for entry in Corpus::small().entries().iter().take(6) {
        let inst = &entry.instance;
        let reuse = solve(ScratchPolicy::Reuse, inst, entry.k);
        let transient = solve(ScratchPolicy::Transient, inst, entry.k);
        assert_eq!(
            reuse.coloring, transient.coloring,
            "{}: scratch policies disagree",
            entry.name
        );
        assert_eq!(
            reuse.max_boundary.to_bits(),
            transient.max_boundary.to_bits(),
            "{}",
            entry.name
        );
        let (gr, gt) = (reuse.certified.unwrap(), transient.certified.unwrap());
        assert_eq!(gr.lower.to_bits(), gt.lower.to_bits(), "{}", entry.name);
        assert_eq!(gr.upper.to_bits(), gt.upper.to_bits(), "{}", entry.name);
        assert_eq!(gr.certifier, gt.certifier, "{}", entry.name);
        // solve_anytime's report is never worse than the pipeline's.
        let plain = Theorem4Pipeline::default()
            .partition(inst, entry.k)
            .unwrap();
        let plain_cost = plain.max_boundary_cost(inst.graph(), inst.costs());
        assert!(
            reuse.max_boundary <= plain_cost + 1e-9 * (1.0 + plain_cost),
            "{}: anytime report worse than the pipeline",
            entry.name
        );
    }
}

#[test]
fn interrupt_clock_truncates_deterministically_with_a_sound_gap() {
    // A deterministic "clock": interrupt after exactly 777 visited nodes.
    // No wall time is involved, so two runs must agree bit for bit.
    let inst = instance(hypercube(4));
    let k = 3;
    let run = || {
        let mut clock = |visited: u64| visited >= 777;
        bnb::solve_with_interrupt(&inst, k, &BnbConfig::exhaustive(), &mut clock).unwrap()
    };
    let a = run();
    let b = run();
    assert!(!a.proven_optimal, "the clock must truncate this search");
    assert_eq!(
        a.nodes, 777,
        "stop is checked before counting: exact prefix"
    );
    assert_eq!(
        a.coloring, b.coloring,
        "interrupted runs must be bit-identical"
    );
    assert_eq!(a.max_boundary.to_bits(), b.max_boundary.to_bits());
    assert_eq!(a.nodes, b.nodes);
    assert_eq!(a.gap.lower.to_bits(), b.gap.lower.to_bits());
    // The truncated result is still a valid strictly balanced coloring…
    assert!(a.coloring.is_total());
    assert!(a.coloring.is_strictly_balanced(inst.weights()));
    let report = verify_decomposition(inst.graph(), inst.costs(), inst.weights(), &a.coloring);
    assert!(report.is_valid());
    // …whose certified gap brackets the true optimum (n = 16: the
    // oracle can still name it).
    let opt = exact_min_max_boundary(&inst, k).unwrap().max_boundary;
    assert!(
        a.gap.lower <= opt + 1e-9 * (1.0 + opt),
        "truncated lower bound {} above the optimum {opt}",
        a.gap.lower
    );
    assert!(
        opt <= a.gap.upper + 1e-9 * (1.0 + a.gap.upper),
        "optimum {opt} above the truncated upper bound {}",
        a.gap.upper
    );
    assert!(
        !a.gap.certifier.is_empty(),
        "truncated gap must name its certifier"
    );
}

#[test]
fn bnb_partitioner_exposes_the_engine_on_the_trait_surface() {
    let part = BnbPartitioner {
        cfg: BnbConfig::with_node_budget(10_000),
    };
    assert_eq!(part.name(), "bnb (anytime)");
    let inst = instance(path(12));
    let chi = part.partition(&inst, 2).unwrap();
    let direct = bnb::solve(&inst, 2, &part.cfg).unwrap();
    assert_eq!(
        chi, direct.coloring,
        "trait adapter must run the same search"
    );
}
