//! Fingerprint stability: the warm path is only sound if the cache key is
//! canonical across every representation detour an instance can take.
//!
//! Three invariances, each a way a spurious key change would silently turn
//! warm traffic cold (or — worse — a key *collision across distinct
//! instances* would be caught only by the exact-match backstop):
//!
//! 1. **METIS round-trip** — serialize with `write_metis`, re-ingest with
//!    `parse_metis_reader`: same fingerprint, for every corpus entry.
//! 2. **Scratch-policy invariance** — solving under `Reuse` vs `Transient`
//!    neither perturbs the instance's identity nor the coloring served.
//! 3. **Corpus separation** — all corpus entries (every family × profile)
//!    have pairwise-distinct combined fingerprints, and structure digests
//!    separate the distinct topologies.

use std::collections::BTreeMap;
use std::io::BufReader;

use mmb_core::pipeline::ScratchPolicy;
use mmb_core::prelude::*;
use mmb_graph::fingerprint::structure_digest;
use mmb_graph::io::{parse_metis_reader, write_metis};
use mmb_graph::Fingerprint;
use mmb_instances::corpus::Corpus;

#[test]
fn metis_round_trip_preserves_the_fingerprint() {
    for e in &Corpus::quick() {
        let inst = &e.instance;
        let before = inst.fingerprint();
        let doc = write_metis(inst.graph(), inst.weights(), inst.costs());
        // Through the streaming reader — the ingestion path a service
        // front end would use on uploaded files.
        let parsed = parse_metis_reader(BufReader::new(doc.as_bytes()))
            .unwrap_or_else(|err| panic!("{}: METIS re-ingest failed: {err:?}", e.name));
        let after = Fingerprint::of_parts(&parsed.graph, &parsed.costs, &parsed.weights);
        assert_eq!(
            before, after,
            "{}: METIS round-trip changed the fingerprint",
            e.name
        );
        assert_eq!(before.artifact_key(), after.artifact_key());
        assert_eq!(before.combined(), after.combined());
    }
}

#[test]
fn scratch_policy_cannot_perturb_identity_or_output() {
    let corpus = Corpus::quick();
    for e in corpus.entries().iter().take(4) {
        let inst = &e.instance;
        let fp0 = inst.fingerprint();
        let mut colorings = Vec::new();
        for policy in [ScratchPolicy::Reuse, ScratchPolicy::Transient] {
            let mut cfg = PipelineConfig {
                p: e.p.max(1.5),
                ..PipelineConfig::default()
            };
            cfg.scratch = policy;
            let report = Solver::for_instance(inst)
                .classes(e.k)
                .config(cfg)
                .build()
                .unwrap_or_else(|err| panic!("{}: build failed: {err}", e.name))
                .solve();
            assert_eq!(
                inst.fingerprint(),
                fp0,
                "{}: solving under {policy:?} mutated the instance identity",
                e.name
            );
            colorings.push(report.coloring);
        }
        assert_eq!(
            colorings[0], colorings[1],
            "{}: Reuse and Transient scratch disagree on the coloring",
            e.name
        );
    }
}

#[test]
fn corpus_fingerprints_are_pairwise_distinct() {
    let corpus = Corpus::quick();
    let mut combined: BTreeMap<u64, &str> = BTreeMap::new();
    let mut artifact: BTreeMap<u64, &str> = BTreeMap::new();
    for e in &corpus {
        let fp = e.instance.fingerprint();
        if let Some(prev) = combined.insert(fp.combined(), &e.name) {
            panic!(
                "combined fingerprint collision between corpus entries `{prev}` and `{}`",
                e.name
            );
        }
        // Artifact keys (structure ⊕ costs) must also separate entries:
        // the two profiles of one family differ in costs, and families
        // differ in structure.
        if let Some(prev) = artifact.insert(fp.artifact_key(), &e.name) {
            panic!(
                "artifact-key collision between corpus entries `{prev}` and `{}`",
                e.name
            );
        }
    }
    assert_eq!(combined.len(), corpus.len());

    // Structure digests separate distinct topologies; same-family entries
    // at the two profiles share one (weights/costs must not leak in).
    let mut by_structure: BTreeMap<u64, Vec<&str>> = BTreeMap::new();
    for e in &corpus {
        by_structure
            .entry(structure_digest(e.instance.graph()))
            .or_default()
            .push(e.family);
    }
    for (digest, families) in &by_structure {
        assert!(
            families.windows(2).all(|w| w[0] == w[1]),
            "structure digest {digest:#x} shared across families {families:?}"
        );
    }
    assert!(
        by_structure.len() >= 8,
        "expected at least one distinct structure per family, got {}",
        by_structure.len()
    );
}

#[test]
fn weight_only_deltas_keep_the_artifact_key() {
    // The serving-layer contract behind warm weight churn: a delta that
    // touches only weights moves `combined()` but not `artifact_key()`.
    let corpus = Corpus::quick();
    let e = &corpus.entries()[0];
    let base = e.instance.fingerprint();
    let applied = InstanceDelta::new()
        .set_weight(0, e.instance.weights()[0] + 1.0)
        .apply(&e.instance)
        .expect("weight delta applies");
    let fp = applied.instance.fingerprint();
    assert_eq!(fp.artifact_key(), base.artifact_key());
    assert_ne!(fp.combined(), base.combined());

    // A cost delta moves both.
    let applied = InstanceDelta::new()
        .set_cost(0, e.instance.costs()[0] + 0.5)
        .apply(&e.instance)
        .expect("cost delta applies");
    let fp = applied.instance.fingerprint();
    assert_ne!(fp.artifact_key(), base.artifact_key());
    assert_ne!(fp.combined(), base.combined());
}
