//! Cross-crate integration: the full Theorem 4 pipeline on every graph
//! family × weight family × splitter combination, always checking the
//! machine-verifiable guarantee (eq. (1)) and sanity of the boundary.

use mmb_core::prelude::*;
use mmb_graph::gen::grid::GridGraph;
use mmb_graph::gen::tree::{caterpillar, random_tree};
use mmb_instances::weights::{WeightFamily, ALL_FAMILIES};
use mmb_splitters::adversarial::AdversarialSplitter;
use mmb_splitters::bfs::BfsSplitter;
use mmb_splitters::grid::GridSplitter;
use mmb_splitters::recording::RecordingSplitter;
use mmb_splitters::tree::TreeSplitter;
use mmb_splitters::Splitter;

fn check_strict<S: Splitter + ?Sized>(
    g: &mmb_graph::Graph,
    costs: &[f64],
    weights: &[f64],
    k: usize,
    sp: &S,
    label: &str,
) -> Decomposition {
    let d = decompose(g, costs, weights, k, sp, &[], &PipelineConfig::default())
        .unwrap_or_else(|e| panic!("{label}: {e}"));
    let r = verify_decomposition(g, costs, weights, &d.coloring);
    assert!(r.is_partition, "{label}: not a partition");
    assert!(
        r.is_valid(),
        "{label}: eq. (1) violated, defect {} slack {}",
        r.strict_defect,
        r.strict_slack
    );
    d
}

#[test]
fn grids_times_weight_families() {
    let grid = GridGraph::lattice(&[20, 20]);
    let n = grid.graph.num_vertices();
    let costs: Vec<f64> = (0..grid.graph.num_edges())
        .map(|e| 1.0 + (e % 4) as f64)
        .collect();
    let sp = GridSplitter::new(&grid, &costs);
    for fam in ALL_FAMILIES {
        let weights = fam.generate(n, 77);
        for k in [2usize, 7, 16] {
            check_strict(
                &grid.graph,
                &costs,
                &weights,
                k,
                &sp,
                &format!("{}/k{k}", fam.name()),
            );
        }
    }
}

#[test]
fn three_dimensional_grid() {
    let grid = GridGraph::lattice(&[6, 6, 6]);
    let n = grid.graph.num_vertices();
    let costs = vec![1.0; grid.graph.num_edges()];
    let sp = GridSplitter::new(&grid, &costs);
    let weights = WeightFamily::PowerLaw.generate(n, 5);
    let d = decompose(
        &grid.graph,
        &costs,
        &weights,
        9,
        &sp,
        &[],
        &PipelineConfig::with_p(1.5),
    )
    .unwrap();
    assert!(d.coloring.is_strictly_balanced(&weights));
}

#[test]
fn forests_with_tree_splitter() {
    for (label, g) in [
        ("random_tree", random_tree(400, 3, 9)),
        ("caterpillar", caterpillar(80, 3)),
    ] {
        let n = g.num_vertices();
        let costs: Vec<f64> = (0..g.num_edges()).map(|e| 1.0 + (e % 3) as f64).collect();
        let sp = TreeSplitter::new(&g);
        let weights = WeightFamily::Uniform.generate(n, 3);
        check_strict(&g, &costs, &weights, 8, &sp, label);
    }
}

#[test]
fn irregular_grid_subsets() {
    let grid = GridGraph::percolation(&[24, 24], 0.8, 31);
    let n = grid.graph.num_vertices();
    let costs = vec![1.0; grid.graph.num_edges()];
    let sp = GridSplitter::new(&grid, &costs);
    let weights = WeightFamily::Bimodal.generate(n, 13);
    check_strict(&grid.graph, &costs, &weights, 6, &sp, "percolation");
}

#[test]
fn failure_injection_adversarial_splitter_keeps_strictness() {
    // A contract-honoring but quality-hostile splitter: the pipeline's
    // *balance* guarantee must survive; only boundary quality degrades.
    let grid = GridGraph::lattice(&[16, 16]);
    let n = grid.graph.num_vertices();
    let costs = vec![1.0; grid.graph.num_edges()];
    let sp = AdversarialSplitter::new(n, 1234);
    let weights = WeightFamily::Exponential.generate(n, 3);
    let d = check_strict(&grid.graph, &costs, &weights, 8, &sp, "adversarial");
    // And the boundary really is much worse than with the honest splitter —
    // the experiment only makes sense if the injection bites.
    let honest = GridSplitter::new(&grid, &costs);
    let dh = check_strict(&grid.graph, &costs, &weights, 8, &honest, "honest");
    assert!(
        d.max_boundary() > dh.max_boundary(),
        "adversarial ({}) should be worse than honest ({})",
        d.max_boundary(),
        dh.max_boundary()
    );
}

#[test]
fn bfs_splitter_generic_graphs() {
    // BFS splitter has no quality guarantee but satisfies the contract;
    // strictness must hold on arbitrary graphs (here: a cycle with chords).
    let mut b = mmb_graph::GraphBuilder::new(60);
    for v in 0..60u32 {
        b.add_edge(v, (v + 1) % 60);
        if v % 5 == 0 {
            b.add_edge(v, (v + 30) % 60);
        }
    }
    let g = b.build();
    let costs = vec![1.0; g.num_edges()];
    let sp = BfsSplitter::new(&g);
    let weights = WeightFamily::Uniform.generate(60, 21);
    check_strict(&g, &costs, &weights, 5, &sp, "cycle+chords");
}

#[test]
fn recording_splitter_measures_work() {
    let grid = GridGraph::lattice(&[12, 12]);
    let n = grid.graph.num_vertices();
    let costs = vec![1.0; grid.graph.num_edges()];
    let inner = GridSplitter::new(&grid, &costs);
    let rec = RecordingSplitter::new(inner, &grid.graph, &costs);
    let weights = WeightFamily::Uniform.generate(n, 2);
    check_strict(&grid.graph, &costs, &weights, 6, &rec, "recording");
    let stats = rec.stats();
    assert!(stats.calls > 0, "pipeline must exercise the splitter");
    assert!(stats.total_cut_cost >= 0.0);
    assert!(stats.max_cut_cost <= stats.total_cut_cost + 1e-9);
}

#[test]
fn stage_outputs_are_consistent() {
    let grid = GridGraph::lattice(&[16, 16]);
    let n = grid.graph.num_vertices();
    let costs = vec![1.0; grid.graph.num_edges()];
    let sp = GridSplitter::new(&grid, &costs);
    let weights = WeightFamily::Uniform.generate(n, 8);
    let d = decompose(
        &grid.graph,
        &costs,
        &weights,
        10,
        &sp,
        &[],
        &PipelineConfig::default(),
    )
    .unwrap();
    // Stage 1 and 2 are total colorings too.
    assert!(d.stages.0.is_total());
    assert!(d.stages.1.is_total());
    // Stage 2 is almost strict: within 2‖w‖∞ of the average.
    let cm = d.stages.1.class_measures(&weights);
    let avg: f64 = cm.iter().sum::<f64>() / cm.len() as f64;
    let wmax = weights.iter().cloned().fold(0.0, f64::max);
    for (i, &c) in cm.iter().enumerate() {
        assert!(
            (c - avg).abs() <= 2.0 * wmax + 1e-9,
            "stage-2 class {i} not almost strict: {c} vs avg {avg}"
        );
    }
}

#[test]
fn extreme_k_values() {
    let grid = GridGraph::lattice(&[8, 8]);
    let n = grid.graph.num_vertices();
    let costs = vec![1.0; grid.graph.num_edges()];
    let sp = GridSplitter::new(&grid, &costs);
    let weights = WeightFamily::Uniform.generate(n, 1);
    for k in [1usize, 2, 63, 64, 100] {
        check_strict(&grid.graph, &costs, &weights, k, &sp, &format!("k={k}"));
    }
}

#[test]
fn zero_cost_edges_and_zero_weights() {
    let grid = GridGraph::lattice(&[10, 10]);
    let n = grid.graph.num_vertices();
    let costs: Vec<f64> = (0..grid.graph.num_edges())
        .map(|e| if e % 3 == 0 { 0.0 } else { 2.0 })
        .collect();
    let sp = GridSplitter::new(&grid, &costs);
    let mut weights = vec![1.0; n];
    for w in weights.iter_mut().step_by(4) {
        *w = 0.0;
    }
    check_strict(&grid.graph, &costs, &weights, 5, &sp, "zeros");
}
