//! Differential tests: the exact oracle vs every partitioner, on every
//! small corpus entry.
//!
//! On each `Corpus::small()` entry (n ≤ 10) and k ∈ {2, 3} the suite
//! asserts the full optimality chain:
//!
//! * the oracle's coloring is a *valid* solution (total + eq. (1)), and
//!   its reported cost matches a from-scratch recomputation;
//! * `oracle ≤ pipeline` — no heuristic may beat exhaustive search — and
//!   the pipeline agrees bit-for-bit under `ScratchPolicy::Reuse` and
//!   `ScratchPolicy::Transient`;
//! * the Theorem-4/5 bound chain at the corpus exponent (`p = 1`),
//!   against the RHS `‖c‖₁/k + Δ_c` — Theorem 5's form with `‖c‖∞`
//!   sharpened to the max cost degree `Δ_c` (the Theorem-4 shape; at
//!   n ≤ 10 the "well-behaved" reduction `Δ_c = O(‖c‖∞)` is vacuous).
//!   The *oracle* — i.e. the true optimum, which is what the theorems
//!   bound — must satisfy it **with constant 1** on every entry; the
//!   *pipeline* satisfies it within its measured small-n constant
//!   (≤ 1.5 across the whole corpus — the asymptotic statement hides
//!   exactly this constant). The `reproduce corpus` CI gate enforces the
//!   genuine `‖c‖∞` Theorem-5 form at ratio ≤ 1 on the full-size corpus,
//!   where it does hold for the pipeline;
//! * `oracle ≤ baseline` for every baseline whose output is itself
//!   strictly balanced (a non-strict coloring is outside the oracle's
//!   feasible set, so no comparison is implied);
//! * the oracle dropped in as a `&dyn Partitioner` produces the same
//!   coloring as the direct call.

use mmb_bench::standard_baselines;
use mmb_core::api::{Partitioner, Theorem4Pipeline};
use mmb_core::bounds;
use mmb_core::oracle::{exact_min_max_boundary, ExactOracle};
use mmb_core::pipeline::{PipelineConfig, ScratchPolicy};
use mmb_core::verify::verify_decomposition;
use mmb_instances::corpus::Corpus;

fn pipeline_with(scratch: ScratchPolicy) -> Theorem4Pipeline {
    Theorem4Pipeline {
        cfg: PipelineConfig {
            scratch,
            ..PipelineConfig::default()
        },
    }
}

#[test]
fn oracle_is_feasible_and_self_consistent_on_every_small_entry() {
    for entry in &Corpus::small() {
        let inst = &entry.instance;
        for k in [2usize, 3] {
            let s = exact_min_max_boundary(inst, k)
                .unwrap_or_else(|e| panic!("{} k={k}: {e}", entry.name));
            assert!(s.coloring.is_total(), "{} k={k}", entry.name);
            let report =
                verify_decomposition(inst.graph(), inst.costs(), inst.weights(), &s.coloring);
            assert!(
                report.is_valid(),
                "{} k={k}: oracle output invalid",
                entry.name
            );
            assert!(
                (report.max_boundary - s.max_boundary).abs() <= 1e-9 * (1.0 + s.max_boundary),
                "{} k={k}: reported {} vs recomputed {}",
                entry.name,
                s.max_boundary,
                report.max_boundary
            );
            // The Partitioner adapter is the same search.
            let via_trait = ExactOracle.partition(inst, k).unwrap();
            assert_eq!(via_trait, s.coloring, "{} k={k}", entry.name);
        }
    }
}

#[test]
fn oracle_le_pipeline_le_theorem5_under_both_scratch_policies() {
    for entry in &Corpus::small() {
        let inst = &entry.instance;
        for k in [2usize, 3] {
            let oracle = exact_min_max_boundary(inst, k).unwrap();
            let reuse = pipeline_with(ScratchPolicy::Reuse)
                .partition(inst, k)
                .unwrap();
            let transient = pipeline_with(ScratchPolicy::Transient)
                .partition(inst, k)
                .unwrap();
            // The workspace fast path is a pure optimization.
            assert_eq!(
                reuse, transient,
                "{} k={k}: scratch policies disagree",
                entry.name
            );
            assert!(
                reuse.is_strictly_balanced(inst.weights()),
                "{} k={k}: pipeline not strict",
                entry.name
            );
            let pipeline_cost = reuse.max_boundary_cost(inst.graph(), inst.costs());
            assert!(
                oracle.max_boundary <= pipeline_cost + 1e-9 * (1.0 + pipeline_cost),
                "{} k={k}: oracle {} beats pipeline {}",
                entry.name,
                oracle.max_boundary,
                pipeline_cost
            );
            // The Theorem-4/5 RHS at the corpus exponent (p = 1, σ = 1):
            // ‖c‖₁/k + Δ_c (see the module docs). The theorems bound the
            // *optimum*, so the oracle must meet the RHS with constant 1;
            // the pipeline meets it within its small-n constant.
            let bound = bounds::theorem4(
                1.0,
                entry.p,
                k,
                inst.cost_norm(entry.p),
                inst.max_cost_degree(),
            );
            assert!(
                oracle.max_boundary <= bound + 1e-9 * (1.0 + bound),
                "{} k={k}: optimum {} violates the Theorem-4/5 bound {}",
                entry.name,
                oracle.max_boundary,
                bound
            );
            assert!(
                pipeline_cost <= 1.5 * bound + 1e-9 * (1.0 + bound),
                "{} k={k}: pipeline {} exceeds 1.5× Theorem-4/5 bound {}",
                entry.name,
                pipeline_cost,
                bound
            );
        }
    }
}

#[test]
fn oracle_never_beaten_by_any_strictly_balanced_baseline() {
    // The same roster the corpus sweep scores — shared constructor, so a
    // baseline added there automatically gets oracle coverage here.
    let baselines = standard_baselines();
    let mut strict_comparisons = 0usize;
    for entry in &Corpus::small() {
        let inst = &entry.instance;
        for k in [2usize, 3] {
            let oracle = exact_min_max_boundary(inst, k).unwrap();
            for algo in &baselines {
                let Ok(chi) = algo.partition(inst, k) else {
                    continue;
                };
                assert!(chi.is_total(), "{} k={k} {}", entry.name, algo.name());
                // Only strictly balanced colorings are in the oracle's
                // feasible set; non-strict baseline output is exempt.
                if !chi.is_strictly_balanced(inst.weights()) {
                    continue;
                }
                strict_comparisons += 1;
                let cost = chi.max_boundary_cost(inst.graph(), inst.costs());
                assert!(
                    oracle.max_boundary <= cost + 1e-9 * (1.0 + cost),
                    "{} k={k}: oracle {} beaten by {} at {}",
                    entry.name,
                    oracle.max_boundary,
                    algo.name(),
                    cost
                );
            }
        }
    }
    // The exemption must not silently swallow the whole comparison:
    // plenty of baseline runs do produce strict colorings on these
    // instances.
    assert!(
        strict_comparisons >= 30,
        "only {strict_comparisons} strict baseline colorings across the small corpus"
    );
}

#[test]
fn oracle_improves_on_the_pipeline_somewhere() {
    // The oracle must not degenerate into "return the incumbent": on at
    // least one small entry the exhaustive search finds a strictly
    // cheaper coloring than the pipeline's.
    let mut improved = 0usize;
    for entry in &Corpus::small() {
        let inst = &entry.instance;
        for k in [2usize, 3] {
            let oracle = exact_min_max_boundary(inst, k).unwrap();
            let pipe = Theorem4Pipeline::default().partition(inst, k).unwrap();
            let pipe_cost = pipe.max_boundary_cost(inst.graph(), inst.costs());
            if oracle.max_boundary < pipe_cost - 1e-9 * (1.0 + pipe_cost) {
                improved += 1;
            }
        }
    }
    assert!(improved >= 1, "oracle never improved on the pipeline");
}
