//! Adversarial-weights regression suite across every comparator path this
//! PR converted to `total_cmp`.
//!
//! The weight vector mixes exact zeros, negative zeros, subnormals, huge
//! magnitudes and ties — the inputs on which `partial_cmp(..).unwrap()`
//! comparators either panic (NaN) or silently depend on tie order. Each
//! entry point must (a) not panic, (b) be bit-deterministic across two
//! identical calls, and (c) reject NaN at validation instead of reaching
//! any comparator. Extends the pattern introduced for `strict.rs` (see
//! `adversarial_finite_weights_are_deterministic_and_panic_free` there) to
//! the baselines, separator grouping and the full pipeline.

use mmb_baselines::greedy::{first_fit, lpt};
use mmb_baselines::kl::{refine, KlParams};
use mmb_baselines::multilevel::{multilevel, MultilevelParams};
use mmb_core::prelude::*;
use mmb_graph::gen::grid::GridGraph;
use mmb_graph::VertexSet;
use mmb_splitters::grid::GridSplitter;
use mmb_splitters::separator::{SeparatorSplitter, TreeCentroidSeparator};
use mmb_splitters::Splitter;

/// Subnormals, ±0.0, ties, and a 1e300 spike — all finite, all nasty.
fn adversarial_weights(n: usize) -> Vec<f64> {
    (0..n)
        .map(|v| match v % 6 {
            0 => 0.0,
            1 => -0.0,
            2 => f64::MIN_POSITIVE / 2.0, // subnormal
            3 => f64::MIN_POSITIVE,
            4 => 1e300,
            _ => 1.0,
        })
        .collect()
}

fn poisoned_weights(n: usize) -> Vec<f64> {
    let mut w = adversarial_weights(n);
    w[n / 2] = f64::NAN;
    w
}

#[test]
fn greedy_baselines_deterministic_and_strict() {
    let n = 96;
    let weights = adversarial_weights(n);
    for k in [2usize, 5, 17] {
        let a = lpt(n, k, &weights).unwrap();
        let b = lpt(n, k, &weights).unwrap();
        assert_eq!(a, b, "lpt nondeterministic at k={k}");
        assert!(a.is_strictly_balanced(&weights), "lpt k={k}");
        let a = first_fit(n, k, &weights).unwrap();
        let b = first_fit(n, k, &weights).unwrap();
        assert_eq!(a, b, "first_fit nondeterministic at k={k}");
        assert!(a.is_strictly_balanced(&weights), "first_fit k={k}");
    }
}

#[test]
fn kl_refine_survives_adversarial_weights() {
    let grid = GridGraph::lattice(&[8, 8]);
    let g = &grid.graph;
    let n = g.num_vertices();
    let weights = adversarial_weights(n);
    let costs = vec![1.0; g.num_edges()];
    let start = first_fit(n, 4, &weights).unwrap();
    let a = refine(g, &costs, &weights, &start, &KlParams::default()).unwrap();
    let b = refine(g, &costs, &weights, &start, &KlParams::default()).unwrap();
    assert_eq!(a, b, "kl::refine nondeterministic");
    assert!(a.is_total());
    // Refinement never worsens the total cut.
    let total = |chi: &mmb_graph::Coloring| chi.boundary_costs(g, &costs).iter().sum::<f64>();
    assert!(total(&a) <= total(&start) + 1e-9);
}

#[test]
fn multilevel_survives_adversarial_weights_and_cost_ties() {
    let grid = GridGraph::lattice(&[8, 8]);
    let g = &grid.graph;
    let n = g.num_vertices();
    let weights = adversarial_weights(n);
    // All-equal costs force the heavy-edge matching into its tie-break on
    // every single decision.
    let costs = vec![1.0; g.num_edges()];
    let params = MultilevelParams::default();
    let a = multilevel(g, &costs, &weights, 4, &params).unwrap();
    let b = multilevel(g, &costs, &weights, 4, &params).unwrap();
    assert_eq!(a, b, "multilevel nondeterministic under full cost ties");
    assert!(a.is_total());
}

#[test]
fn separator_splitter_grouping_handles_ties_and_extremes() {
    // A path graph routes through TreeCentroidSeparator and the
    // Lipton–Tarjan two-thirds grouping (the sort this PR re-keyed).
    let grid = GridGraph::path(64);
    let g = &grid.graph;
    let n = g.num_vertices();
    let weights = adversarial_weights(n);
    let costs = vec![1.0; g.num_edges()];
    let total: f64 = weights.iter().sum();
    let sp = SeparatorSplitter::new(g, &costs, TreeCentroidSeparator::new(g), 1.0);
    let domain = VertexSet::full(n);
    let a = sp.split(&domain, &weights, total / 2.0);
    let b = sp.split(&domain, &weights, total / 2.0);
    assert_eq!(
        a.iter().collect::<Vec<_>>(),
        b.iter().collect::<Vec<_>>(),
        "separator split nondeterministic"
    );
    assert!(!a.is_empty() && a.len() < n, "split must be proper");
}

#[test]
fn full_pipeline_deterministic_on_adversarial_weights() {
    let grid = GridGraph::lattice(&[8, 8]);
    let g = &grid.graph;
    let n = g.num_vertices();
    let weights = adversarial_weights(n);
    let costs = vec![1.0; g.num_edges()];
    let sp = GridSplitter::new(&grid, &costs);
    let run = || decompose(g, &costs, &weights, 4, &sp, &[], &PipelineConfig::default()).unwrap();
    let a = run();
    let b = run();
    assert_eq!(a.coloring, b.coloring, "pipeline nondeterministic");
    assert!(a.coloring.is_strictly_balanced(&weights));
}

#[test]
fn nan_is_rejected_at_validation_everywhere() {
    let grid = GridGraph::lattice(&[6, 6]);
    let g = &grid.graph;
    let n = g.num_vertices();
    let w = poisoned_weights(n);
    let costs = vec![1.0; g.num_edges()];
    let nan_err = |e: &SolveError| matches!(e, SolveError::Instance(InstanceError::NotFinite { what }) if *what == "weights");
    assert!(nan_err(&lpt(n, 4, &w).unwrap_err()));
    assert!(nan_err(&first_fit(n, 4, &w).unwrap_err()));
    let start = first_fit(n, 4, &vec![1.0; n]).unwrap();
    assert!(nan_err(
        &refine(g, &costs, &w, &start, &KlParams::default()).unwrap_err()
    ));
    assert!(nan_err(
        &multilevel(g, &costs, &w, 4, &MultilevelParams::default()).unwrap_err()
    ));
}
