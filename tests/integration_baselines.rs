//! Integration of the §1 comparison (E7): each baseline exhibits exactly
//! the weakness the paper ascribes to it, and the Theorem 4 pipeline
//! exhibits neither.

use mmb_baselines::greedy::{first_fit, lpt, round_robin};
use mmb_baselines::kl::{refine, KlParams};
use mmb_baselines::multilevel::{multilevel, MultilevelParams};
use mmb_baselines::recursive_bisection::{recursive_bisection, recursive_bisection_kst};
use mmb_core::prelude::*;
use mmb_instances::climate::{climate, ClimateParams};
use mmb_instances::weights::WeightFamily;
use mmb_splitters::grid::GridSplitter;

#[test]
fn greedy_balances_but_cuts_everything() {
    // Flat weights on the climate mesh: greedy is strictly balanced but its
    // boundary is within a constant of "cut every edge".
    let wl = climate(&ClimateParams {
        lon: 48,
        lat: 24,
        ..Default::default()
    });
    let g = &wl.grid.graph;
    let n = g.num_vertices();
    let k = 8;
    let flat = vec![1.0; n];
    let chi = first_fit(n, k, &flat).unwrap();
    assert!(chi.is_strictly_balanced(&flat));
    let total_cost: f64 = wl.costs.iter().sum();
    let avg_boundary = chi.avg_boundary_cost(g, &wl.costs);
    // Greedy interleaves ids, so classes are scattered: per-class boundary
    // approaches 2·total/k.
    assert!(
        avg_boundary > 0.5 * total_cost / k as f64,
        "greedy unexpectedly cheap: {avg_boundary} vs total {total_cost}"
    );
}

#[test]
fn ours_beats_greedy_on_boundary_and_rb_on_balance() {
    let wl = climate(&ClimateParams {
        lon: 48,
        lat: 24,
        ..Default::default()
    });
    let g = &wl.grid.graph;
    let n = g.num_vertices();
    let k = 12;
    let sp = GridSplitter::new(&wl.grid, &wl.costs);

    let ours = decompose(
        g,
        &wl.costs,
        &wl.weights,
        k,
        &sp,
        &[],
        &PipelineConfig::default(),
    )
    .unwrap();
    let greedy = lpt(n, k, &wl.weights).unwrap();
    let rb = recursive_bisection(g, &sp, &wl.weights, k).unwrap();

    // (a) ours is strictly balanced; (b) far cheaper boundary than greedy;
    // (c) within a constant factor of RB's boundary despite strictness.
    assert!(ours.coloring.is_strictly_balanced(&wl.weights));
    let ours_max = ours.max_boundary();
    let greedy_max = greedy.max_boundary_cost(g, &wl.costs);
    let rb_max = rb.max_boundary_cost(g, &wl.costs);
    assert!(
        ours_max < 0.8 * greedy_max,
        "ours {ours_max} should clearly beat greedy {greedy_max}"
    );
    assert!(
        ours_max <= 6.0 * rb_max,
        "ours {ours_max} should be within a constant of RB {rb_max}"
    );
}

#[test]
fn rb_is_not_strict_under_adversarial_weights() {
    // Spike weights break recursive bisection's balance (it has no
    // strictness mechanism), while the pipeline stays exact.
    let wl = climate(&ClimateParams {
        lon: 48,
        lat: 24,
        ..Default::default()
    });
    let g = &wl.grid.graph;
    let n = g.num_vertices();
    let k = 16;
    let weights = WeightFamily::Spike.generate(n, 4);
    let sp = GridSplitter::new(&wl.grid, &wl.costs);
    let rb = recursive_bisection(g, &sp, &weights, k).unwrap();
    let ours = decompose(
        g,
        &wl.costs,
        &weights,
        k,
        &sp,
        &[],
        &PipelineConfig::default(),
    )
    .unwrap();
    assert!(ours.coloring.is_strictly_balanced(&weights));
    // RB has no strictness mechanism, so its defect is unconstrained (its
    // sign depends on the RNG stream — asserting on it is flaky). The
    // property is one-sided: the pipeline must stay exact regardless.
    let rb_defect = rb.strict_balance_defect(&weights);
    let ours_defect = ours.coloring.strict_balance_defect(&weights);
    assert!(
        ours_defect <= 1e-6,
        "ours defect {ours_defect} (RB defect for reference: {rb_defect})"
    );
}

#[test]
fn kl_improves_rb_without_destroying_it() {
    let wl = climate(&ClimateParams {
        lon: 48,
        lat: 24,
        ..Default::default()
    });
    let g = &wl.grid.graph;
    let k = 8;
    let sp = GridSplitter::new(&wl.grid, &wl.costs);
    let rb = recursive_bisection(g, &sp, &wl.weights, k).unwrap();
    let refined = refine(g, &wl.costs, &wl.weights, &rb, &KlParams::default()).unwrap();
    let total = |chi: &mmb_graph::Coloring| chi.boundary_costs(g, &wl.costs).iter().sum::<f64>();
    assert!(total(&refined) <= total(&rb) + 1e-9);
    assert!(refined.is_total());
}

#[test]
fn kst_variant_tracks_costs() {
    let wl = climate(&ClimateParams {
        lon: 48,
        lat: 24,
        ..Default::default()
    });
    let g = &wl.grid.graph;
    let k = 8;
    let sp = GridSplitter::new(&wl.grid, &wl.costs);
    let kst = recursive_bisection_kst(g, &wl.costs, &sp, &wl.weights, k).unwrap();
    assert!(kst.is_total());
    // Sane boundary: within a constant of plain RB.
    let rb = recursive_bisection(g, &sp, &wl.weights, k).unwrap();
    let kst_avg = kst.avg_boundary_cost(g, &wl.costs);
    let rb_avg = rb.avg_boundary_cost(g, &wl.costs);
    assert!(kst_avg <= 3.0 * rb_avg, "kst {kst_avg} vs rb {rb_avg}");
}

#[test]
fn multilevel_and_round_robin_extremes() {
    let wl = climate(&ClimateParams {
        lon: 48,
        lat: 24,
        ..Default::default()
    });
    let g = &wl.grid.graph;
    let n = g.num_vertices();
    let k = 8;
    let ml = multilevel(g, &wl.costs, &wl.weights, k, &MultilevelParams::default()).unwrap();
    let rr = round_robin(n, k).unwrap();
    // Multilevel crushes round-robin on total cut.
    let total = |chi: &mmb_graph::Coloring| chi.boundary_costs(g, &wl.costs).iter().sum::<f64>();
    assert!(total(&ml) < 0.5 * total(&rr));
}
