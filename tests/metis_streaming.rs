//! Differential suite for the streaming METIS parser.
//!
//! `parse_metis(&doc)` is a thin wrapper over
//! `parse_metis_reader(doc.as_bytes())`, where the whole document is one
//! contiguous buffer. These tests drive the reader entry point the hard
//! way — through a `BufReader` with a tiny capacity over a source that
//! trickles a few bytes per `read` call — and require the result to be
//! **identical** to the `&str` path: same CSR, same weights and costs
//! bit-for-bit, and the same typed error on every malformed document.
//! Fixtures cover the quick corpus (all graph families × both weight/cost
//! profiles) plus CRLF, comment/blank-line, and weighted-format variants.

use std::io::{BufReader, Read};

use mmb_graph::io::{parse_metis, parse_metis_reader, write_metis, MetisError, MetisGraph};
use mmb_instances::corpus::Corpus;

/// A reader that yields at most `chunk` bytes per `read` call, forcing
/// `BufReader` refills mid-token and mid-line.
struct Trickle<'a> {
    data: &'a [u8],
    pos: usize,
    chunk: usize,
}

impl Read for Trickle<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.chunk.min(buf.len()).min(self.data.len() - self.pos);
        buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

/// Parse `doc` through a 7-byte `BufReader` over a 3-bytes-per-read
/// source — the most adversarial streaming shape short of an error.
fn parse_trickled(doc: &str) -> Result<MetisGraph, MetisError> {
    parse_metis_reader(BufReader::with_capacity(
        7,
        Trickle {
            data: doc.as_bytes(),
            pos: 0,
            chunk: 3,
        },
    ))
}

fn assert_identical(doc: &str, label: &str) {
    let eager = parse_metis(doc);
    let streamed = parse_trickled(doc);
    match (eager, streamed) {
        (Ok(a), Ok(b)) => {
            assert_eq!(a.graph.edge_list(), b.graph.edge_list(), "{label}: edges");
            assert_eq!(a.graph.num_vertices(), b.graph.num_vertices(), "{label}: n");
            assert_eq!(a.weights, b.weights, "{label}: weights");
            assert_eq!(a.costs, b.costs, "{label}: costs");
        }
        (Err(a), Err(b)) => assert_eq!(a, b, "{label}: errors diverged"),
        (a, b) => panic!("{label}: one path failed — eager {a:?} vs streamed {b:?}"),
    }
}

#[test]
fn corpus_documents_stream_identically() {
    for entry in &Corpus::quick() {
        let inst = &entry.instance;
        let doc = write_metis(inst.graph(), inst.weights(), inst.costs());
        assert_identical(&doc, &entry.name);
        // CRLF + trailing-whitespace transport damage.
        let crlf: String = doc
            .lines()
            .map(|l| format!("{l} \r\n"))
            .collect::<Vec<_>>()
            .concat();
        assert_identical(&crlf, &format!("{} (crlf)", entry.name));
        // Comment and blank-line decoration between every line.
        let mut decorated = String::from("% header comment\n\n");
        for line in doc.lines() {
            decorated.push_str(line);
            decorated.push_str("\n% interleaved\n\n");
        }
        assert_identical(&decorated, &format!("{} (comments)", entry.name));
    }
}

#[test]
fn weighted_format_variants_stream_identically() {
    // Every fmt digit combination on a small triangle-plus-tail graph.
    for doc in [
        // fmt absent (unweighted).
        "4 4\n2 3\n1 3\n1 2 4\n3\n",
        // fmt 001: edge weights only.
        "4 4 001\n2 0.5 3 1.25\n1 0.5 3 2.0\n1 1.25 2 2.0 4 3.5\n3 3.5\n",
        // fmt 010: vertex weights only.
        "4 4 010 1\n2.5 2 3\n1.5 1 3\n0.25 1 2 4\n9 3\n",
        // fmt 011 with ncon 1: both.
        "4 4 011 1\n2.5 2 0.5 3 1.25\n1.5 1 0.5 3 2.0\n0.25 1 1.25 2 2.0 4 3.5\n9 3 3.5\n",
        // fmt 100 (vertex sizes, ignored dimension) is unsupported by the
        // writer but multi-constraint ncon is: two weights per vertex,
        // first one kept.
        "2 1 010 2\n1.0 7.0 2\n2.0 8.0 1\n",
    ] {
        assert_identical(doc, doc);
    }
}

#[test]
fn malformed_documents_fail_identically() {
    // One document per error family, including the budget/deferral
    // interactions the streaming rewrite had to preserve exactly.
    for doc in [
        "",
        "% nothing\n",
        "3\n",
        "3 3 011 1 9\n",
        "x 3\n",
        "2 1\n2\n",                          // vertices budget (ImplausibleHeader)
        "9 0\n1\n",                          // budget outranks the body's self-loop
        "2 1\n2\n% pad\n",                   // missing adjacency line
        "2 1\n3\n1\n",                       // neighbor out of range
        "2 1\n0\n1\n",                       // neighbor out of range (zero)
        "2 1\n1\n2\n",                       // self-loop
        "2 1\n2 2\n1\n",                     // duplicate listing on one line
        "3 2\n2\n3\n2\n",                    // asymmetric adjacency
        "2 2\n2\n1\n",                       // edge-count mismatch (too few)
        "3 1\n2 3\n1 3\n1 2\n",              // edge-count mismatch (too many)
        "2 1\n2\n1\n7\n",                    // trailing content
        "2 1 010 1\nabc 2\n1.0 1\n",         // bad vertex weight
        "2 1 001\n2 oops\n1 5.0\n",          // bad edge weight
        "2 1 001\n2\n1 5.0\n",               // missing edge weight
        "2 1 011 1\n1.0 2 5.0\n1.0 1 6.0\n", // asymmetric edge weights
        "2 1 999\n2\n1\n",                   // bad fmt
    ] {
        assert_identical(doc, &format!("malformed {doc:?}"));
    }
}

#[test]
fn io_errors_surface_as_typed_line_errors() {
    struct FailAfter {
        pos: usize,
        limit: usize,
    }
    impl Read for FailAfter {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            if self.pos == self.limit {
                return Err(std::io::Error::other("disk on fire"));
            }
            buf[0] = b"5 4\n2\n1 3\n2 4\n3 5\n4\n"[self.pos];
            self.pos += 1;
            Ok(1)
        }
    }
    // Dies after the header and first adjacency line have been delivered.
    let err = parse_metis_reader(BufReader::with_capacity(4, FailAfter { pos: 0, limit: 6 }))
        .unwrap_err();
    match err {
        MetisError::BadLine { what, .. } => {
            assert!(what.contains("read error"), "unexpected: {what}")
        }
        other => panic!("expected BadLine, got {other:?}"),
    }
}
