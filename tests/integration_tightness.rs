//! Integration of the tightness machinery (Theorem 5 / Lemma 40): no
//! algorithm beats the certified lower bound; our upper bound sandwiches it.

use mmb_baselines::greedy::{first_fit, lpt};
use mmb_baselines::multilevel::{multilevel, MultilevelParams};
use mmb_baselines::recursive_bisection::recursive_bisection;
use mmb_core::bounds;
use mmb_core::prelude::*;
use mmb_graph::gen::grid::GridGraph;
use mmb_graph::measure::total_edge_norm_p;
use mmb_instances::tight::{min_balanced_separation_cost, TightInstance};
use mmb_splitters::grid::GridSplitter;

fn grid_twin(side: usize, k: usize) -> GridGraph {
    GridGraph::disjoint_copies(&GridGraph::lattice(&[side, side]), k / 4)
}

#[test]
fn nobody_beats_the_certificate() {
    let side = 8;
    let k = 16;
    let tight = TightInstance::grid(side, k);
    let twin = grid_twin(side, k);
    let g = &tight.union.graph;
    assert_eq!(twin.graph.num_vertices(), g.num_vertices());
    assert_eq!(twin.graph.num_edges(), g.num_edges());
    let sp = GridSplitter::new(&twin, &tight.union.costs);

    let ours = decompose(
        g,
        &tight.union.costs,
        &tight.weights,
        k,
        &sp,
        &[],
        &PipelineConfig::default(),
    )
    .unwrap()
    .coloring;
    let candidates = [
        ("ours", ours),
        ("lpt", lpt(g.num_vertices(), k, &tight.weights).unwrap()),
        (
            "first_fit",
            first_fit(g.num_vertices(), k, &tight.weights).unwrap(),
        ),
        (
            "rb",
            recursive_bisection(g, &sp, &tight.weights, k).unwrap(),
        ),
        (
            "multilevel",
            multilevel(
                g,
                &tight.union.costs,
                &tight.weights,
                k,
                &MultilevelParams::default(),
            )
            .unwrap(),
        ),
    ];
    for (name, chi) in &candidates {
        let (avg, lb, rough) = tight.check(chi);
        if rough {
            assert!(
                avg >= lb - 1e-9,
                "{name}: avg boundary {avg} beats the certified lower bound {lb}"
            );
        }
    }
}

#[test]
fn upper_and_lower_sandwich() {
    // Our max boundary stays within a constant of Theorem 5's upper bound
    // while the certified lower bound stays below the measured average —
    // the sandwich that makes the bound tight.
    let side = 8;
    for k in [8usize, 16] {
        let tight = TightInstance::grid(side, k);
        let twin = grid_twin(side, k);
        let g = &tight.union.graph;
        let sp = GridSplitter::new(&twin, &tight.union.costs);
        let d = decompose(
            g,
            &tight.union.costs,
            &tight.weights,
            k,
            &sp,
            &[],
            &PipelineConfig::default(),
        )
        .unwrap();
        let (avg, lb, rough) = tight.check(&d.coloring);
        assert!(rough, "strictly balanced is roughly balanced here");
        assert!(avg >= lb - 1e-9);
        let upper = bounds::theorem5(2.0, k, total_edge_norm_p(g, &tight.union.costs, 2.0), 1.0);
        assert!(
            d.max_boundary() <= 10.0 * upper,
            "k={k}: measured {} far above Theorem 5 bound {upper}",
            d.max_boundary()
        );
    }
}

#[test]
fn exhaustive_certificates_on_named_graphs() {
    use mmb_graph::gen::misc::{complete, cycle, path};
    // Known-by-hand optima (see unit tests for the arguments).
    let cases: [(&str, mmb_graph::Graph, f64); 3] = [
        ("path9", path(9), 2.0),
        ("cycle9", cycle(9), 4.0),
        ("k6", complete(6), 10.0),
    ];
    for (name, g, expect) in cases {
        let costs = vec![1.0; g.num_edges()];
        let w = vec![1.0; g.num_vertices()];
        let b = min_balanced_separation_cost(&g, &costs, &w);
        assert!(
            (b - expect).abs() < 1e-9,
            "{name}: got {b}, expected {expect}"
        );
    }
}

#[test]
fn small_tight_instance_from_exhaustive_base() {
    // Build G̃ from an exhaustively certified 3×3 grid base and check the
    // full Lemma 40 chain end to end.
    let base = GridGraph::lattice(&[3, 3]);
    let costs = vec![1.0; base.graph.num_edges()];
    let weights = vec![1.0; 9];
    let k = 8;
    let tight = TightInstance::exhaustive(&base.graph, &costs, &weights, k);
    assert!(tight.base_separation_cost > 0.0);
    let twin = grid_twin(3, k);
    let g = &tight.union.graph;
    let sp = GridSplitter::new(&twin, &tight.union.costs);
    let d = decompose(
        g,
        &tight.union.costs,
        &tight.weights,
        k,
        &sp,
        &[],
        &PipelineConfig::default(),
    )
    .unwrap();
    let (avg, lb, rough) = tight.check(&d.coloring);
    assert!(rough);
    assert!(avg >= lb - 1e-9, "avg {avg} < lb {lb}");
}
