//! End-to-end coarsening-cascade tests at `n = 10^5`.
//!
//! The cascade (contract → solve coarse → project with per-level KL →
//! host `BinPack2`) is the scale path for million-vertex instances, so it
//! must preserve the two properties the direct pipeline guarantees:
//! *validity* (a total, strictly balanced `k`-coloring of the host) and
//! *determinism* (same instance + same config ⇒ bit-identical coloring —
//! the matching RNG is seeded, contraction is sort-ordered, and KL is
//! sweep-ordered, so nothing may depend on allocation or hash order).

use mmb_core::api::Solver;
use mmb_core::pipeline::{CoarsenConfig, PipelineConfig};
use mmb_core::Instance;
use mmb_graph::gen::grid::GridGraph;

const K: usize = 8;

fn hundred_k_instance() -> Instance {
    let grid = GridGraph::lattice(&[320, 320]);
    let n = grid.graph.num_vertices();
    let m = grid.graph.num_edges();
    assert!(n >= 100_000);
    // Deterministic non-uniform weights so strict balance is non-trivial.
    let weights: Vec<f64> = (0..n)
        .map(|v| 1.0 + ((v * 17 + 3) % 7) as f64 * 0.25)
        .collect();
    Instance::new(grid.graph, vec![1.0; m], weights).expect("grid instance is valid")
}

fn cascade_solve(inst: &Instance) -> mmb_core::api::Report {
    let cfg = PipelineConfig {
        coarsen: Some(CoarsenConfig::default()),
        ..PipelineConfig::default()
    };
    Solver::for_instance(inst)
        .classes(K)
        .config(cfg)
        .build()
        .expect("valid k")
        .solve()
}

#[test]
fn cascade_at_1e5_is_valid() {
    let inst = hundred_k_instance();
    let report = cascade_solve(&inst);
    let n = inst.num_vertices();
    assert!(
        report.coloring.is_total(),
        "cascade left vertices uncolored"
    );
    assert!(
        report.is_strictly_balanced(),
        "cascade coloring not strictly balanced (slack {})",
        report.strict_slack
    );
    let classes = report.coloring.classes();
    assert_eq!(classes.len(), K);
    assert!(
        classes.iter().all(|c| !c.is_empty()),
        "empty class at n = {n}"
    );
    assert!(report.max_boundary.is_finite() && report.max_boundary > 0.0);
    // The intermediate stages are projections of the coarse stages and
    // must cover the host too (stage 3 rebalance starts from them).
    assert!(report.stages.multibalanced.is_total());
    assert!(report.stages.almost_strict.is_total());
}

#[test]
fn cascade_at_1e5_is_deterministic() {
    let inst = hundred_k_instance();
    let a = cascade_solve(&inst);
    let b = cascade_solve(&inst);
    assert!(
        a.coloring == b.coloring,
        "cascade coloring is run-dependent"
    );
    assert_eq!(a.max_boundary, b.max_boundary);
    assert_eq!(a.class_weights, b.class_weights);
}
