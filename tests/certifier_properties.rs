//! Property tests for the PR-6 static certifiers: the whole-edge packing
//! refinement (`EdgePackingBound`) and the forced-separation cut bound
//! (`CutPairBound`).
//!
//! Three properties, each load-bearing for the certified-gap story:
//!
//! * **Soundness.** On randomized oracle-sized instances, neither
//!   certifier ever claims a value above the exact optimum — the same
//!   chain `certificate ≤ OPT` the corpus-wide suite in
//!   `tests/lower_bounds.rs` enforces, here under proptest's
//!   adversarially varied weights and costs.
//! * **Replayable derivations.** Every certificate's derivation
//!   round-trips through [`Derivation::replay`] to the same value, and a
//!   *doctored* derivation (stored intermediates perturbed) is rejected
//!   — a certificate cannot silently drift from the code justifying it.
//! * **Dominance.** The 0/1-knapsack residual of a vertex is ≥ its
//!   fractional-knapsack residual by construction, so wherever the
//!   per-vertex `PackingBound` fires, `EdgePackingBound` must fire at
//!   least as high — asserted exactly (up to fp noise) on every corpus
//!   entry, small through medium.

use mmb_core::api::Instance;
use mmb_core::lower_bounds::cutpair::CutPairBound;
use mmb_core::lower_bounds::packing::{EdgePackingBound, PackingBound};
use mmb_core::lower_bounds::{Derivation, LowerBound};
use mmb_core::oracle::exact_min_max_boundary;
use mmb_graph::gen::misc::{cycle, path};
use mmb_graph::gen::tree::random_tree;
use mmb_graph::Graph;
use mmb_instances::corpus::Corpus;
use proptest::prelude::*;

fn tol(x: f64) -> f64 {
    1e-9 * (1.0 + x.abs())
}

/// Deterministic small host graph: tree / cycle / path by shape.
fn host(shape: usize, n: usize, seed: u64) -> Graph {
    match shape % 3 {
        0 => random_tree(n, 3, seed),
        1 => cycle(n),
        _ => path(n),
    }
}

/// Deterministic weight profiles; `wsel = 1` plants a forced pair (the
/// regime `CutPairBound` prices), the others stay near-uniform.
fn weights(wsel: usize, n: usize, seed: u64) -> Vec<f64> {
    (0..n)
        .map(|i| match wsel % 3 {
            0 => 1.0,
            1 => {
                if i == 0 || i + 1 == n {
                    2.0 * n as f64
                } else {
                    1.0
                }
            }
            _ => 1.0 + ((i as u64 * 13 + seed) % 7) as f64 * 0.35,
        })
        .collect()
}

/// Deterministic positive edge costs with some spread.
fn costs(m: usize, seed: u64) -> Vec<f64> {
    (0..m)
        .map(|e| 0.5 + ((e as u64 * 7 + seed) % 5) as f64 * 0.3)
        .collect()
}

fn new_certifiers() -> Vec<Box<dyn LowerBound>> {
    vec![
        Box::new(EdgePackingBound::default()),
        Box::new(CutPairBound::default()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn new_certifiers_never_exceed_the_oracle_and_replay(
        n in 4usize..=10,
        shape in 0usize..3,
        wsel in 0usize..3,
        seed in 0u64..1_000,
    ) {
        let g = host(shape, n, seed);
        let m = g.num_edges();
        let inst = Instance::new(g, costs(m, seed), weights(wsel, n, seed)).unwrap();
        for k in [2usize, 3] {
            let opt = exact_min_max_boundary(&inst, k).unwrap().max_boundary;
            for certifier in new_certifiers() {
                let Some(cert) = certifier.certify(&inst, k) else { continue };
                prop_assert!(
                    cert.value <= opt + tol(opt),
                    "n={n} shape={shape} wsel={wsel} seed={seed} k={k}: `{}` claims {} \
                     above the optimum {opt}",
                    cert.certifier, cert.value
                );
                let replay = cert.derivation.replay(&inst, k);
                prop_assert!(
                    replay.is_ok(),
                    "`{}` replay rejected: {}",
                    cert.certifier,
                    replay.as_ref().unwrap_err()
                );
                let replayed = replay.unwrap();
                prop_assert!(
                    (replayed - cert.value).abs() <= tol(cert.value),
                    "`{}` replay drifted: {} vs {}",
                    cert.certifier, replayed, cert.value
                );
            }
        }
    }
}

#[test]
fn edge_packing_dominates_per_vertex_packing_on_every_corpus_entry() {
    let pack = PackingBound;
    let epack = EdgePackingBound::default();
    let mut comparisons = 0usize;
    for corpus in [Corpus::small(), Corpus::quick(), Corpus::medium()] {
        for entry in corpus.entries() {
            let inst = &entry.instance;
            let Some(base) = pack.certify(inst, entry.k) else {
                continue;
            };
            let refined = epack.certify(inst, entry.k).unwrap_or_else(|| {
                panic!("{}: edge-packing declined where packing fired", entry.name)
            });
            comparisons += 1;
            // Dominance is by construction: a 0/1 knapsack can only pack
            // less than its fractional relaxation, so the residual cut
            // mass — and with it the bound — can only grow.
            assert!(
                refined.value >= base.value - 1e-12 * (1.0 + base.value),
                "{}: edge-packing {} below per-vertex packing {}",
                entry.name,
                refined.value,
                base.value
            );
        }
    }
    assert!(
        comparisons >= 10,
        "only {comparisons} packing/edge-packing comparisons"
    );
}

#[test]
fn cut_pair_fires_on_the_forced_pair_corpus_entry() {
    let small = Corpus::small();
    let entry = small
        .entries()
        .iter()
        .find(|e| e.name.contains("twin"))
        .expect("the small corpus carries a twin-weighted entry");
    let cert = CutPairBound::default()
        .certify(&entry.instance, entry.k)
        .expect("twin weights force a separated pair");
    assert!(
        cert.value > 0.0,
        "cut-pair must certify a positive bound on the twin entry"
    );
    // The derivation names a genuinely heavy pair.
    let Derivation::CutPair { u, v, .. } = &cert.derivation else {
        panic!("cut-pair certificate must carry a CutPair derivation");
    };
    let w = entry.instance.weights();
    let n = entry.instance.num_vertices() as f64;
    assert!(
        w[*u as usize] + w[*v as usize] >= 4.0 * n - 1e-9,
        "not the planted pair"
    );
    let replayed = cert.derivation.replay(&entry.instance, entry.k).unwrap();
    assert!((replayed - cert.value).abs() <= tol(cert.value));
}

#[test]
fn doctored_derivations_are_rejected_on_replay() {
    // A certificate is only as good as its machine check: perturbing the
    // stored intermediates must make `replay` fail loudly.
    let inst = Instance::new(path(8), costs(7, 3), weights(1, 8, 3)).unwrap();
    let k = 2;

    let cert = CutPairBound::default()
        .certify(&inst, k)
        .expect("forced pair present");
    if let Derivation::CutPair {
        u,
        v,
        cut_cost,
        side,
    } = &cert.derivation
    {
        let doctored = Derivation::CutPair {
            u: *u,
            v: *v,
            cut_cost: cut_cost * 2.0 + 1.0,
            side: side.clone(),
        };
        assert!(
            doctored.replay(&inst, k).is_err(),
            "inflated cut-pair value must not replay"
        );
    } else {
        panic!("cut-pair certificate must carry a CutPair derivation");
    }

    let cert = EdgePackingBound::default()
        .certify(&inst, k)
        .expect("positive cut mass");
    if let Derivation::EdgePacking {
        per_vertex_total,
        vertex_budget,
    } = cert.derivation
    {
        let doctored = Derivation::EdgePacking {
            per_vertex_total: per_vertex_total * 2.0 + 1.0,
            vertex_budget,
        };
        assert!(
            doctored.replay(&inst, k).is_err(),
            "inflated edge-packing mass must not replay"
        );
    } else {
        panic!("edge-packing certificate must carry an EdgePacking derivation");
    }
}
