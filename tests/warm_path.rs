//! Warm-vs-cold differential suite: the warm path must be a pure
//! acceleration, never a quality or correctness regression.
//!
//! Over every quick-corpus entry:
//!
//! - `Solver::resolve_delta` under seeded weight (and occasional cost)
//!   churn serves a total, strictly balanced coloring whose cost is no
//!   worse than a from-scratch solve of the mutated instance (up to fp
//!   tolerance).
//! - A solver built from cached artifacts (cache hit) produces a coloring
//!   bit-identical to one built cold (cache miss) — reusing recognition,
//!   `π`, and `‖c‖_p` must not perturb a single decision downstream.

use mmb_core::api::CacheLookup;
use mmb_core::prelude::*;
use mmb_instances::corpus::Corpus;

/// splitmix64 — seeded churn, replayable.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn entry_config(p: f64) -> PipelineConfig {
    PipelineConfig {
        p: p.max(1.5),
        ..PipelineConfig::default()
    }
}

#[test]
fn resolve_delta_matches_fresh_solves_across_the_corpus() {
    let corpus = Corpus::quick();
    let mut seed = 0x5eed_0001u64;
    let mut warm_serves = 0usize;
    for e in &corpus {
        let inst = &e.instance;
        let n = inst.num_vertices();
        let cfg = entry_config(e.p);
        let solver = Solver::for_instance(inst)
            .classes(e.k)
            .config(cfg.clone())
            .build()
            .unwrap_or_else(|err| panic!("{}: base build failed: {err}", e.name));
        let base = solver.solve();

        // Seeded churn: three weight moves, one cost re-price.
        let mut delta = InstanceDelta::new();
        for _ in 0..3 {
            let v = (splitmix(&mut seed) % n as u64) as u32;
            let w = 0.5 + (splitmix(&mut seed) % 1000) as f64 / 500.0;
            delta = delta.set_weight(v, w);
        }
        let m = inst.graph().num_edges();
        let ec = (splitmix(&mut seed) % m as u64) as u32;
        delta = delta.set_cost(ec, inst.costs()[ec as usize] * 1.25);

        let warm = solver
            .resolve_delta(&delta, &base.coloring)
            .unwrap_or_else(|err| panic!("{}: resolve_delta failed: {err}", e.name));
        if warm.warm {
            warm_serves += 1;
        }

        // Validity: total, strictly balanced, consistent cost accounting.
        assert!(
            warm.coloring.is_total(),
            "{}: partial warm coloring",
            e.name
        );
        assert!(
            warm.coloring.is_strictly_balanced(warm.instance.weights()),
            "{}: warm coloring violates strict balance",
            e.name
        );
        let recomputed = warm
            .coloring
            .max_boundary_cost(warm.instance.graph(), warm.instance.costs());
        assert!(
            (recomputed - warm.max_boundary).abs() <= 1e-9 * recomputed.max(1.0),
            "{}: served cost {} disagrees with recomputation {}",
            e.name,
            warm.max_boundary,
            recomputed
        );

        // Quality: no worse than solving the mutated instance cold.
        let fresh = Solver::for_instance(&warm.instance)
            .classes(e.k)
            .config(cfg)
            .build()
            .unwrap_or_else(|err| panic!("{}: fresh build failed: {err}", e.name))
            .solve();
        assert!(
            warm.max_boundary <= fresh.max_boundary * (1.0 + 1e-9),
            "{}: warm re-solve cost {} worse than fresh {}",
            e.name,
            warm.max_boundary,
            fresh.max_boundary
        );
    }
    assert!(
        warm_serves * 2 >= corpus.len(),
        "warm repair path taken on only {warm_serves}/{} entries — the suite \
         is mostly testing the cold fallback",
        corpus.len()
    );
}

#[test]
fn cache_hit_solves_are_bit_identical_to_cache_miss_solves() {
    let corpus = Corpus::quick();
    let mut cache = SolverCache::new(corpus.len());
    for e in &corpus {
        let inst = &e.instance;
        let cfg = entry_config(e.p);

        // Cold: no artifacts.
        let cold = Solver::for_instance(inst)
            .classes(e.k)
            .config(cfg.clone())
            .build()
            .unwrap_or_else(|err| panic!("{}: cold build failed: {err}", e.name))
            .solve();

        // Prime the cache, then build warm off the hit.
        let (_, first) = cache.get_or_compute(inst, cfg.p);
        assert_eq!(
            first,
            CacheLookup::Miss,
            "{}: expected a cold lookup",
            e.name
        );
        let (artifacts, second) = cache.get_or_compute(inst, cfg.p);
        assert_eq!(
            second,
            CacheLookup::Hit,
            "{}: expected a warm lookup",
            e.name
        );

        let warm = Solver::for_instance(inst)
            .classes(e.k)
            .config(cfg)
            .artifacts(artifacts)
            .build()
            .unwrap_or_else(|err| panic!("{}: warm build failed: {err}", e.name))
            .solve();

        assert_eq!(
            cold.coloring, warm.coloring,
            "{}: artifact reuse changed the coloring",
            e.name
        );
        assert_eq!(
            cold.max_boundary.to_bits(),
            warm.max_boundary.to_bits(),
            "{}: artifact reuse changed the served cost",
            e.name
        );
    }
    let stats = cache.stats();
    assert_eq!(stats.hits as usize, corpus.len());
    assert_eq!(stats.misses as usize, corpus.len());
    assert_eq!(stats.collisions, 0);
}
