//! METIS I/O round-trip tests over the corpus, plus exhaustive
//! malformed-input error paths.
//!
//! `parse(write(g)) == g` must hold *exactly* — Rust's shortest-roundtrip
//! float formatting guarantees `f64 → string → f64` is the identity, so
//! weights and costs compare bit-for-bit, and the builder's canonical
//! edge ordering makes the graphs structurally identical. The suite runs
//! the round trip over every `Corpus::quick()` entry (all eight graph
//! families × both weight/cost profiles), over random trees/grids via a
//! property test, and through the `.part.k` partition convention with
//! pipeline-produced colorings (including CRLF + trailing-whitespace
//! transport damage). Every [`MetisError`] variant has an explicit
//! malformed-document test.

use mmb_core::api::{Partitioner, Theorem4Pipeline};
use mmb_graph::coloring::{Coloring, UNCOLORED};
use mmb_graph::gen::grid::GridGraph;
use mmb_graph::gen::tree::random_tree;
use mmb_graph::io::{parse_metis, parse_partition, write_metis, write_partition, MetisError};
use mmb_instances::corpus::Corpus;
use proptest::prelude::*;

#[test]
fn corpus_instances_roundtrip_exactly() {
    for entry in &Corpus::quick() {
        let inst = &entry.instance;
        let doc = write_metis(inst.graph(), inst.weights(), inst.costs());
        let back = parse_metis(&doc).unwrap_or_else(|e| panic!("{}: {e}", entry.name));
        assert_eq!(
            back.graph.edge_list(),
            inst.graph().edge_list(),
            "{}",
            entry.name
        );
        assert_eq!(back.weights, inst.weights(), "{}", entry.name);
        assert_eq!(back.costs, inst.costs(), "{}", entry.name);
    }
}

#[test]
fn corpus_partitions_roundtrip_through_part_files() {
    // One entry per family keeps this quick while covering every graph
    // shape; the coloring comes from the real pipeline.
    let corpus = Corpus::quick();
    for family in corpus.families() {
        let entry = corpus.family_entries(family).next().unwrap();
        let chi = Theorem4Pipeline::default()
            .partition(&entry.instance, entry.k)
            .unwrap_or_else(|e| panic!("{}: {e}", entry.name));
        let doc = write_partition(&chi);
        let back = parse_partition(&doc, entry.k).unwrap();
        assert_eq!(back, chi, "{}", entry.name);
    }
}

#[test]
fn comments_and_blank_lines_are_ignored() {
    let entry_owner = Corpus::quick();
    let inst = &entry_owner.entries()[0].instance;
    let doc = write_metis(inst.graph(), inst.weights(), inst.costs());
    // Interleave comments and blank lines everywhere.
    let mut decorated = String::from("% leading comment\n\n% another\n");
    for line in doc.lines() {
        decorated.push_str(line);
        decorated.push_str("\n% inline comment line\n\n");
    }
    let back = parse_metis(&decorated).unwrap();
    assert_eq!(back.graph.edge_list(), inst.graph().edge_list());
    assert_eq!(back.weights, inst.weights());
    assert_eq!(back.costs, inst.costs());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn random_instances_roundtrip(
        n in 2usize..60,
        seed in any::<u64>(),
    ) {
        let g = random_tree(n, 4, seed);
        let weights: Vec<f64> =
            (0..n).map(|v| 0.25 + ((seed >> (v % 48)) & 7) as f64 / 3.0).collect();
        let costs: Vec<f64> =
            (0..g.num_edges()).map(|e| 0.1 + ((e as u64 ^ seed) % 11) as f64 / 7.0).collect();
        let doc = write_metis(&g, &weights, &costs);
        let back = parse_metis(&doc).unwrap();
        prop_assert_eq!(back.graph.edge_list(), g.edge_list());
        prop_assert_eq!(back.weights, weights);
        prop_assert_eq!(back.costs, costs);
    }

    #[test]
    fn random_partitions_roundtrip(
        n in 1usize..50,
        k in 1usize..6,
        seed in any::<u64>(),
    ) {
        // Partial colorings (UNCOLORED rows are written as −1) round-trip
        // too.
        let colors: Vec<u32> = (0..n)
            .map(|v| {
                let x = (seed >> (v % 53)) & 7;
                if x == 7 { UNCOLORED } else { (x as usize % k) as u32 }
            })
            .collect();
        let chi = Coloring::from_vec(k, colors);
        let doc = write_partition(&chi);
        let back = parse_partition(&doc, k).unwrap();
        prop_assert_eq!(back, chi);
    }
}

#[test]
fn grid_roundtrip_preserves_unit_defaults() {
    // An unweighted document parses to 1.0 weights/costs; re-serializing
    // (which always writes weights) must parse back identically.
    let grid = GridGraph::lattice(&[5, 4]);
    let n = grid.graph.num_vertices();
    let m = grid.graph.num_edges();
    let doc = write_metis(&grid.graph, &vec![1.0; n], &vec![1.0; m]);
    let back = parse_metis(&doc).unwrap();
    assert_eq!(back.graph.edge_list(), grid.graph.edge_list());
    assert_eq!(back.weights, vec![1.0; n]);
    assert_eq!(back.costs, vec![1.0; m]);
}

// ---------------------------------------------------------------------
// Malformed-input error paths, one per `MetisError` shape.
// ---------------------------------------------------------------------

#[test]
fn bad_header_variants() {
    // Empty document.
    assert!(matches!(parse_metis(""), Err(MetisError::BadHeader(_))));
    // Comments only — still no header.
    assert!(matches!(
        parse_metis("% nothing\n% here\n"),
        Err(MetisError::BadHeader(_))
    ));
    // Too few fields.
    assert!(matches!(parse_metis("3\n"), Err(MetisError::BadHeader(_))));
    // Too many fields.
    assert!(matches!(
        parse_metis("3 3 011 1 9\n"),
        Err(MetisError::BadHeader(_))
    ));
}

#[test]
fn bad_line_variants() {
    // Non-integer vertex count in the header surfaces as BadLine with the
    // header's line number.
    match parse_metis("x 3\n") {
        Err(MetisError::BadLine { line, .. }) => assert_eq!(line, 1),
        other => panic!("{other:?}"),
    }
    // Missing adjacency line for a declared vertex. (A comment line pads
    // the document past the header-plausibility cap so the missing-line
    // path is reached rather than `ImplausibleHeader`.)
    assert!(matches!(
        parse_metis("2 1\n2\n% pad\n"),
        Err(MetisError::BadLine { .. })
    ));
    // Without padding the same document is refused earlier, before any
    // header-sized allocation.
    assert!(matches!(
        parse_metis("2 1\n2\n"),
        Err(MetisError::ImplausibleHeader { .. })
    ));
    // Neighbor id out of range (ids are 1-based).
    assert!(matches!(
        parse_metis("2 1\n3\n1\n"),
        Err(MetisError::BadLine { .. })
    ));
    assert!(matches!(
        parse_metis("2 1\n0\n1\n"),
        Err(MetisError::BadLine { .. })
    ));
    // Self-loop.
    assert!(matches!(
        parse_metis("2 1\n1\n2\n"),
        Err(MetisError::BadLine { .. })
    ));
    // Blank adjacency line under fmt 010 (blank lines are filtered, so
    // the parser reports the later vertex's line as missing).
    assert!(matches!(
        parse_metis("2 1 010 1\n\n1.0 1\n"),
        Err(MetisError::BadLine { .. })
    ));
    // Unparsable vertex weight.
    assert!(matches!(
        parse_metis("2 1 010 1\nabc 2\n1.0 1\n"),
        Err(MetisError::BadLine { .. })
    ));
    // Missing edge weight under fmt 001.
    assert!(matches!(
        parse_metis("2 1 001\n2\n1 5.0\n"),
        Err(MetisError::BadLine { .. })
    ));
    // Unparsable edge weight.
    assert!(matches!(
        parse_metis("2 1 001\n2 oops\n1 5.0\n"),
        Err(MetisError::BadLine { .. })
    ));
    // Asymmetric edge weights across the two endpoint lines.
    assert!(matches!(
        parse_metis("2 1 011 1\n1.0 2 5.0\n1.0 1 6.0\n"),
        Err(MetisError::BadLine { .. })
    ));
}

#[test]
fn crlf_documents_roundtrip_corpus_wide() {
    // Windows transport damage — CRLF endings and trailing whitespace on
    // every line — must be invisible to the parser, for graphs and
    // partitions alike. One entry per family covers every graph shape
    // and both weight/cost formatting profiles.
    let corpus = Corpus::quick();
    for family in corpus.families() {
        for entry in corpus.family_entries(family) {
            let inst = &entry.instance;
            let doc = write_metis(inst.graph(), inst.weights(), inst.costs());
            let crlf: String = doc
                .lines()
                .map(|l| format!("{l} \r\n"))
                .collect::<Vec<_>>()
                .concat();
            let back = parse_metis(&crlf).unwrap_or_else(|e| panic!("{}: {e}", entry.name));
            assert_eq!(
                back.graph.edge_list(),
                inst.graph().edge_list(),
                "{}",
                entry.name
            );
            assert_eq!(back.weights, inst.weights(), "{}", entry.name);
            assert_eq!(back.costs, inst.costs(), "{}", entry.name);
        }
        let entry = corpus.family_entries(family).next().unwrap();
        let chi = Theorem4Pipeline::default()
            .partition(&entry.instance, entry.k)
            .unwrap();
        let part = write_partition(&chi).replace('\n', "\r\n");
        assert_eq!(
            parse_partition(&part, entry.k).unwrap(),
            chi,
            "{}",
            entry.name
        );
    }
}

#[test]
fn asymmetric_adjacency_variant() {
    // Vertex 1 lists 2; vertex 2's line does not list 1 back.
    assert_eq!(
        parse_metis("3 2\n2\n3\n2\n").unwrap_err(),
        MetisError::AsymmetricAdjacency {
            listed_by: 1,
            missing_from: 2
        }
    );
    assert!(parse_metis("3 2\n2\n3\n2\n")
        .unwrap_err()
        .to_string()
        .contains("missing from vertex 2"));
    // A duplicate listing on one line is a BadLine, not a silent count
    // distortion.
    assert!(matches!(
        parse_metis("2 1\n2 2\n1\n"),
        Err(MetisError::BadLine { line: 2, .. })
    ));
}

#[test]
fn trailing_content_variant() {
    // Trailing blank/comment lines are decoration…
    assert!(parse_metis("2 1\n2\n1\n\n  \n% eof\n").is_ok());
    // …trailing data is a typed error naming the line.
    let err = parse_metis("2 1\n2\n1\n7\n").unwrap_err();
    assert_eq!(err, MetisError::TrailingContent { line: 4 });
    assert!(err.to_string().contains("line 4"));
}

#[test]
fn edge_count_mismatch_variants() {
    // Header declares more edges than the body provides…
    assert_eq!(
        parse_metis("2 2\n2\n1\n").unwrap_err(),
        MetisError::EdgeCountMismatch {
            declared: 2,
            found: 1
        }
    );
    // …and fewer (triangle body, header says 1).
    assert_eq!(
        parse_metis("3 1\n2 3\n1 3\n1 2\n").unwrap_err(),
        MetisError::EdgeCountMismatch {
            declared: 1,
            found: 3
        }
    );
}

#[test]
fn partition_error_paths() {
    // Unparsable class id.
    assert!(matches!(
        parse_partition("0\nnope\n", 3),
        Err(MetisError::BadLine { line: 2, .. })
    ));
    // Class id out of range for the declared k.
    assert!(matches!(
        parse_partition("0\n3\n", 3),
        Err(MetisError::BadLine { line: 2, .. })
    ));
    // Negative ids other than the uncolored sentinel still parse as
    // uncolored (the `.part` convention writes −1): −7 is accepted.
    let chi = parse_partition("-7\n1\n", 2).unwrap();
    assert_eq!(chi.get(0), None);
    assert_eq!(chi.get(1), Some(1));
}

#[test]
fn error_displays_name_the_problem() {
    let e = parse_metis("2 2\n2\n1\n").unwrap_err();
    assert_eq!(e.to_string(), "header declares 2 edges, body has 1");
    let e = parse_metis("").unwrap_err();
    assert!(e.to_string().contains("bad METIS header"));
    let e = parse_metis("2 1\n3\n1\n").unwrap_err();
    assert!(e.to_string().contains("out of range"));
}
