//! # mmb — min-max boundary decomposition of weighted graphs
//!
//! Facade crate for the workspace reproducing
//!
//! > David Steurer, *Tight Bounds on the Min-Max Boundary Decomposition
//! > Cost of Weighted Graphs*, SPAA 2006 (arXiv `cs/0606001`).
//!
//! It re-exports the six member crates under one roof so downstream users
//! (and this repo's own `examples/` and `tests/`) can depend on a single
//! package. See `README.md` for the crate map and `DESIGN.md` for the
//! experiment index.
//!
//! ```
//! use mmb::graph::gen::grid::GridGraph;
//! use mmb::core::{decompose, PipelineConfig};
//! use mmb::splitters::grid::GridSplitter;
//!
//! let grid = GridGraph::lattice(&[8, 8]);
//! let costs = vec![1.0; grid.graph.num_edges()];
//! let weights = vec![1.0; grid.graph.num_vertices()];
//! let sp = GridSplitter::new(&grid, &costs);
//! let d = decompose(&grid.graph, &costs, &weights, 4, &sp, &[], &PipelineConfig::default())
//!     .unwrap();
//! assert!(d.coloring.is_strictly_balanced(&weights));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use mmb_baselines as baselines;
pub use mmb_bench as bench;
pub use mmb_core as core;
pub use mmb_graph as graph;
pub use mmb_instances as instances;
pub use mmb_splitters as splitters;
