//! # mmb — min-max boundary decomposition of weighted graphs
//!
//! Facade crate for the workspace reproducing
//!
//! > David Steurer, *Tight Bounds on the Min-Max Boundary Decomposition
//! > Cost of Weighted Graphs*, SPAA 2006 (arXiv `cs/0606001`).
//!
//! It re-exports the six member crates under one roof so downstream users
//! (and this repo's own `examples/` and `tests/`) can depend on a single
//! package. See `README.md` for the crate map and `DESIGN.md` for the
//! experiment index.
//!
//! The public API is `Instance` + `Solver` (in [`mmb_core::api`], re-exported
//! here): validate the inputs once, build a reusable solver with an
//! auto-selected splitter, and solve as often as you like:
//!
//! ```
//! use mmb::core::api::{Instance, Solver, SplitterChoice};
//! use mmb::graph::gen::grid::GridGraph;
//!
//! let grid = GridGraph::lattice(&[8, 8]);
//! let costs = vec![1.0; grid.graph.num_edges()];
//! let weights = vec![1.0; grid.graph.num_vertices()];
//! let inst = Instance::from_grid(grid, costs, weights)?;
//! let solver = Solver::for_instance(&inst)
//!     .classes(4)
//!     .p(2.0)
//!     .splitter(SplitterChoice::Auto)
//!     .build()?;
//! let report = solver.solve(); // reusable — call again without rebuilding
//! assert!(report.is_strictly_balanced());
//! assert_eq!(solver.family(), "grid"); // GridSplit was auto-selected
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use mmb_baselines as baselines;
pub use mmb_bench as bench;
pub use mmb_core as core;
pub use mmb_graph as graph;
pub use mmb_instances as instances;
pub use mmb_splitters as splitters;
