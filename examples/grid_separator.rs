//! GridSplit demo (Section 6, Theorem 19): splitting grids with highly
//! fluctuating edge costs, versus the naive cost-blind splitter.
//!
//! Two arrangements are shown:
//! * an expensive **wall** of edges placed exactly at the weight median —
//!   the adversarial case where the naive `σ_p(G,1)·φ` generalization pays
//!   `Θ(φ)` while GridSplit dodges the wall;
//! * **iid** two-level noise — no spatial structure to exploit, so the two
//!   splitters are on par (and both far under the Theorem 19 bound).
//!
//! ```text
//! cargo run --release -p mmb-bench --example grid_separator
//! ```

use mmb_bench::experiments::wall_costs;
use mmb_graph::cut::boundary_cost_within;
use mmb_graph::gen::grid::GridGraph;
use mmb_graph::measure::total_edge_norm_p;
use mmb_graph::VertexSet;
use mmb_instances::costs::CostFamily;
use mmb_splitters::grid::{theorem19_bound, GridSplitter};
use mmb_splitters::Splitter;

fn main() {
    let side = 48usize;
    let grid = GridGraph::lattice(&[side, side]);
    let n = grid.graph.num_vertices();
    let w = VertexSet::full(n);
    let weights = vec![1.0; n];
    println!("bisecting a {side}×{side} grid, sweeping cost fluctuation φ (p = 2):\n");
    println!(
        "{:<14} {:>10} {:>12} {:>12} {:>8} {:>14}",
        "arrangement", "φ", "aware cut", "blind cut", "ratio", "Thm19 bound"
    );
    for phi in [1.0, 10.0, 1e3, 1e6] {
        for (label, costs) in [
            ("median wall", wall_costs(&grid, side, phi, 2)),
            ("iid twolevel", CostFamily::TwoLevel.generate(&grid, phi, 7)),
        ] {
            let aware = GridSplitter::new(&grid, &costs);
            let blind = GridSplitter::unit_cost(&grid);
            let ua = aware.split(&w, &weights, n as f64 / 2.0);
            let ub = blind.split(&w, &weights, n as f64 / 2.0);
            let ca = boundary_cost_within(&grid.graph, &costs, &w, &ua);
            let cb = boundary_cost_within(&grid.graph, &costs, &w, &ub);
            let bound = theorem19_bound(2, phi, total_edge_norm_p(&grid.graph, &costs, 2.0));
            println!(
                "{label:<14} {phi:>10.0} {ca:>12.1} {cb:>12.1} {:>8.1} {bound:>14.1}",
                cb / ca
            );
        }
    }
    println!("\non the wall arrangement the cost-blind splitter pays Θ(φ·side) while");
    println!("GridSplit stays near the unit-cost optimum — Theorem 19 in action.");
}
