//! Tightness demo (Theorem 5, Lemma 40): a certified lower-bound instance
//! on which *every* roughly balanced partition — by any algorithm — must
//! pay, and the Theorem 4 upper bound sandwiches it to a constant.
//!
//! ```text
//! cargo run --release --example tightness
//! ```

use mmb_baselines::greedy::Lpt;
use mmb_baselines::multilevel::Multilevel;
use mmb_baselines::recursive_bisection::RecursiveBisection;
use mmb_core::api::{Instance, Partitioner, Theorem4Pipeline};
use mmb_graph::gen::grid::GridGraph;
use mmb_instances::tight::{min_balanced_separation_cost, TightInstance};

fn main() {
    // Exhaustively certified mini example first: every balanced separation
    // of the 3×3 grid costs at least…
    let mini = GridGraph::lattice(&[3, 3]);
    let b =
        min_balanced_separation_cost(&mini.graph, &vec![1.0; mini.graph.num_edges()], &[1.0; 9]);
    println!("exhaustive certificate: every balanced separation of the 3×3 grid costs ≥ {b:.1}\n");

    // The real instance: G̃ = ⌊k/4⌋ disjoint copies of a 12×12 grid. The
    // `Instance` carries the twin grid's geometry so every splitter-driven
    // algorithm (ours, recursive bisection) gets GridSplit automatically.
    let k = 16;
    let tight = TightInstance::grid(12, k);
    let base = GridGraph::lattice(&[12, 12]);
    let twin = GridGraph::disjoint_copies(&base, k / 4);
    println!(
        "G̃ = {} copies of the 12×12 grid ({} vertices); k = {k}",
        tight.union.copies,
        tight.union.graph.num_vertices()
    );
    println!(
        "certified: every roughly balanced {k}-coloring has avg boundary ≥ {:.3}\n",
        tight.avg_boundary_lower_bound()
    );

    let inst = Instance::from_grid(twin, tight.union.costs.clone(), tight.weights.clone())
        .expect("valid instance");
    let algos: [&dyn Partitioner; 4] = [
        &Theorem4Pipeline::default(),
        &Lpt,
        &RecursiveBisection { kst: false },
        &Multilevel::default(),
    ];
    println!(
        "{:<16} {:>10} {:>10} {:>12}",
        "algorithm", "avg ∂", "≥ LB?", "rough-bal?"
    );
    for algo in algos {
        let chi = algo.partition(&inst, k).expect("valid instance");
        let (avg, lb, rough) = tight.check(&chi);
        println!(
            "{:<16} {avg:>10.2} {:>10} {:>12}",
            algo.name(),
            if avg >= lb { "yes" } else { "VIOLATION" },
            if rough { "yes" } else { "no" }
        );
    }
    println!("\nnobody beats the certificate — the Theorem 4 bound is tight up to constants.");
}
