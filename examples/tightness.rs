//! Tightness demo (Theorem 5, Lemma 40): a certified lower-bound instance
//! on which *every* roughly balanced partition — by any algorithm — must
//! pay, and the Theorem 4 upper bound sandwiches it to a constant.
//!
//! ```text
//! cargo run --release -p mmb-bench --example tightness
//! ```

use mmb_baselines::greedy::lpt;
use mmb_baselines::multilevel::{multilevel, MultilevelParams};
use mmb_baselines::recursive_bisection::recursive_bisection;
use mmb_core::prelude::*;
use mmb_graph::gen::grid::GridGraph;
use mmb_instances::tight::{min_balanced_separation_cost, TightInstance};
use mmb_splitters::grid::GridSplitter;

fn main() {
    // Exhaustively certified mini example first: every balanced separation
    // of the 3×3 grid costs at least…
    let mini = GridGraph::lattice(&[3, 3]);
    let b = min_balanced_separation_cost(
        &mini.graph,
        &vec![1.0; mini.graph.num_edges()],
        &[1.0; 9],
    );
    println!("exhaustive certificate: every balanced separation of the 3×3 grid costs ≥ {b:.1}\n");

    // The real instance: G̃ = ⌊k/4⌋ disjoint copies of a 12×12 grid.
    let k = 16;
    let tight = TightInstance::grid(12, k);
    let base = GridGraph::lattice(&[12, 12]);
    let twin = GridGraph::disjoint_copies(&base, k / 4);
    let g = &tight.union.graph;
    println!(
        "G̃ = {} copies of the 12×12 grid ({} vertices); k = {k}",
        tight.union.copies,
        g.num_vertices()
    );
    println!(
        "certified: every roughly balanced {k}-coloring has avg boundary ≥ {:.3}\n",
        tight.avg_boundary_lower_bound()
    );

    let sp = GridSplitter::new(&twin, &tight.union.costs);
    let ours = decompose(
        g, &tight.union.costs, &tight.weights, k, &sp, &[], &PipelineConfig::default(),
    )
    .expect("valid instance")
    .coloring;
    let candidates = [
        ("ours (Thm 4)", ours),
        ("greedy LPT", lpt(g.num_vertices(), k, &tight.weights)),
        ("rec. bisection", recursive_bisection(g, &sp, &tight.weights, k)),
        (
            "multilevel",
            multilevel(g, &tight.union.costs, &tight.weights, k, &MultilevelParams::default()),
        ),
    ];
    println!("{:<16} {:>10} {:>10} {:>12}", "algorithm", "avg ∂", "≥ LB?", "rough-bal?");
    for (name, chi) in &candidates {
        let (avg, lb, rough) = tight.check(chi);
        println!(
            "{name:<16} {avg:>10.2} {:>10} {:>12}",
            if avg >= lb { "yes" } else { "VIOLATION" },
            if rough { "yes" } else { "no" }
        );
    }
    println!("\nnobody beats the certificate — the Theorem 4 bound is tight up to constants.");
}
