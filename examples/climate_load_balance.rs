//! The paper's §1 motivating application: distributing a climate
//! simulation over k machines.
//!
//! Regions of the earth's surface are jobs with wildly varying runtimes
//! (day/night, storms); neighboring regions exchange data. We compare the
//! Theorem 4 pipeline against greedy bin packing (balance without boundary
//! control) and recursive bisection (boundary without strict balance) —
//! all three behind the same `Partitioner` interface on one `Instance`.
//!
//! ```text
//! cargo run --release --example climate_load_balance
//! ```

use mmb_baselines::greedy::Lpt;
use mmb_baselines::recursive_bisection::RecursiveBisection;
use mmb_core::api::{Instance, Partitioner, Theorem4Pipeline};
use mmb_core::prelude::verify_decomposition;
use mmb_instances::climate::{climate, ClimateParams};

fn main() {
    let wl = climate(&ClimateParams {
        lon: 96,
        lat: 48,
        storms: 6,
        ..Default::default()
    });
    let k = 16;
    println!(
        "climate workload: {} regions, {} couplings, {k} machines",
        wl.grid.graph.num_vertices(),
        wl.grid.graph.num_edges()
    );

    // One validated instance, three algorithms, identical scoring.
    let inst = Instance::from_grid(wl.grid, wl.costs, wl.weights).expect("valid instance");
    let algos: [&dyn Partitioner; 3] = [
        &Theorem4Pipeline::default(),
        &Lpt,
        &RecursiveBisection { kst: false },
    ];
    for algo in algos {
        let chi = algo.partition(&inst, k).expect("valid instance");
        let r = verify_decomposition(inst.graph(), inst.costs(), inst.weights(), &chi);
        let avg_w: f64 = r.class_weights.iter().sum::<f64>() / r.class_weights.len() as f64;
        let max_w = r.class_weights.iter().cloned().fold(0.0, f64::max);
        println!(
            "  {:<18} makespan-proxy {max_w:8.1} (avg {avg_w:8.1})  strict: {:<3}  comm: max {:8.1} avg {:8.1}",
            algo.name(),
            if r.is_valid() { "yes" } else { "no" },
            r.max_boundary,
            r.avg_boundary
        );
    }

    println!("\nthe point of the paper: only the first row is strictly balanced");
    println!("*and* keeps the per-machine communication bounded.");
}
