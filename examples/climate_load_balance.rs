//! The paper's §1 motivating application: distributing a climate
//! simulation over k machines.
//!
//! Regions of the earth's surface are jobs with wildly varying runtimes
//! (day/night, storms); neighboring regions exchange data. We compare the
//! Theorem 4 pipeline against greedy bin packing (balance without boundary
//! control) and recursive bisection (boundary without strict balance).
//!
//! ```text
//! cargo run --release -p mmb-bench --example climate_load_balance
//! ```

use mmb_baselines::greedy::lpt;
use mmb_baselines::recursive_bisection::recursive_bisection;
use mmb_core::prelude::*;
use mmb_graph::Coloring;
use mmb_instances::climate::{climate, ClimateParams};
use mmb_splitters::grid::GridSplitter;

fn describe(name: &str, g: &mmb_graph::Graph, costs: &[f64], weights: &[f64], chi: &Coloring) {
    let r = verify_decomposition(g, costs, weights, chi);
    let avg_w: f64 = r.class_weights.iter().sum::<f64>() / r.class_weights.len() as f64;
    let max_w = r.class_weights.iter().cloned().fold(0.0, f64::max);
    println!(
        "  {name:<18} makespan-proxy {max_w:8.1} (avg {avg_w:8.1})  strict: {:<3}  comm: max {:8.1} avg {:8.1}",
        if r.is_valid() { "yes" } else { "no" },
        r.max_boundary,
        r.avg_boundary
    );
}

fn main() {
    let wl = climate(&ClimateParams { lon: 96, lat: 48, storms: 6, ..Default::default() });
    let g = &wl.grid.graph;
    let k = 16;
    println!(
        "climate workload: {} regions, {} couplings, {k} machines",
        g.num_vertices(),
        g.num_edges()
    );

    let splitter = GridSplitter::new(&wl.grid, &wl.costs);
    let ours = decompose(g, &wl.costs, &wl.weights, k, &splitter, &[], &PipelineConfig::default())
        .expect("valid instance");
    describe("ours (Theorem 4)", g, &wl.costs, &wl.weights, &ours.coloring);

    let greedy = lpt(g.num_vertices(), k, &wl.weights);
    describe("greedy LPT", g, &wl.costs, &wl.weights, &greedy);

    let rb = recursive_bisection(g, &splitter, &wl.weights, k);
    describe("rec. bisection", g, &wl.costs, &wl.weights, &rb);

    println!("\nthe point of the paper: only the first row is strictly balanced");
    println!("*and* keeps the per-machine communication bounded.");
}
