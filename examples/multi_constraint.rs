//! Multi-balanced decomposition (the conclusion's remark): strict balance
//! in runtime, *simultaneous* weak balance in memory and I/O, bounded
//! per-part communication.
//!
//! ```text
//! cargo run --release --example multi_constraint
//! ```

use mmb_core::api::{Instance, Solver};
use mmb_instances::climate::{climate, ClimateParams};

fn main() {
    let wl = climate(&ClimateParams {
        lon: 64,
        lat: 32,
        ..Default::default()
    });
    let n = wl.grid.graph.num_vertices();
    let k = 8;

    // Three resources per job: runtime (strictly balanced), memory
    // (quadratic in activity — heavy tail), and I/O (coastline stripe).
    let mem: Vec<f64> = wl.weights.iter().map(|w| w * w).collect();
    let io: Vec<f64> = (0..n as u32)
        .map(|v| if wl.grid.coord(v)[1] < 2 { 5.0 } else { 0.1 })
        .collect();

    // Extra measures ride on the Instance; the solver weakly balances
    // every one of them while keeping runtime strictly balanced.
    let runtime = wl.weights.clone();
    let inst = Instance::from_grid(wl.grid, wl.costs, wl.weights)
        .and_then(|i| i.with_extra_measure(mem.clone()))
        .and_then(|i| i.with_extra_measure(io.clone()))
        .expect("valid instance");
    let solver = Solver::for_instance(&inst)
        .classes(k)
        .build()
        .expect("valid configuration");
    let report = solver.solve();

    println!("multi-balanced decomposition of {n} jobs into {k} parts:\n");
    println!(
        "{:<10} {:>12} {:>12} {:>10}",
        "resource", "max class", "avg class", "max/avg"
    );
    for (name, m) in [("runtime", &runtime), ("memory", &mem), ("io", &io)] {
        let cm = report.coloring.class_measures(m);
        let avg: f64 = cm.iter().sum::<f64>() / k as f64;
        let max = cm.iter().cloned().fold(0.0, f64::max);
        println!("{name:<10} {max:>12.1} {avg:>12.1} {:>10.2}", max / avg);
    }
    println!(
        "\nruntime strictly balanced: {}",
        report.is_strictly_balanced()
    );
    println!("max communication per part: {:.1}", report.max_boundary);
    assert!(report.is_strictly_balanced());
}
