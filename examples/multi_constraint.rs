//! Multi-balanced decomposition (the conclusion's remark): strict balance
//! in runtime, *simultaneous* weak balance in memory and I/O, bounded
//! per-part communication.
//!
//! ```text
//! cargo run --release -p mmb-bench --example multi_constraint
//! ```

use mmb_core::prelude::*;
use mmb_instances::climate::{climate, ClimateParams};
use mmb_splitters::grid::GridSplitter;

fn main() {
    let wl = climate(&ClimateParams { lon: 64, lat: 32, ..Default::default() });
    let g = &wl.grid.graph;
    let n = g.num_vertices();
    let k = 8;

    // Three resources per job: runtime (strictly balanced), memory
    // (quadratic in activity — heavy tail), and I/O (coastline stripe).
    let mem: Vec<f64> = wl.weights.iter().map(|w| w * w).collect();
    let io: Vec<f64> = (0..n as u32)
        .map(|v| if wl.grid.coord(v)[1] < 2 { 5.0 } else { 0.1 })
        .collect();

    let sp = GridSplitter::new(&wl.grid, &wl.costs);
    let d = decompose(
        g, &wl.costs, &wl.weights, k, &sp, &[&mem, &io], &PipelineConfig::default(),
    )
    .expect("valid instance");

    println!("multi-balanced decomposition of {n} jobs into {k} parts:\n");
    println!("{:<10} {:>12} {:>12} {:>10}", "resource", "max class", "avg class", "max/avg");
    for (name, m) in [("runtime", &wl.weights), ("memory", &mem), ("io", &io)] {
        let cm = d.coloring.class_measures(m);
        let avg: f64 = cm.iter().sum::<f64>() / k as f64;
        let max = cm.iter().cloned().fold(0.0, f64::max);
        println!("{name:<10} {max:>12.1} {avg:>12.1} {:>10.2}", max / avg);
    }
    println!("\nruntime strictly balanced: {}", d.coloring.is_strictly_balanced(&wl.weights));
    println!("max communication per part: {:.1}", d.max_boundary());
    assert!(d.coloring.is_strictly_balanced(&wl.weights));
}
