//! Quickstart: decompose a weighted grid into k strictly balanced parts
//! with small maximum boundary cost — via the `Instance`/`Solver` API.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use mmb_core::api::{Instance, Solver, SplitterChoice};
use mmb_graph::gen::grid::GridGraph;

fn main() {
    // 1. An instance: a 32×32 grid ("mesh cells"), per-vertex work, and
    //    per-edge communication costs. Validation happens once, here.
    let grid = GridGraph::lattice(&[32, 32]);
    let n = grid.graph.num_vertices();
    let weights: Vec<f64> = (0..n).map(|v| 1.0 + ((v * 37) % 7) as f64).collect();
    let costs: Vec<f64> = (0..grid.graph.num_edges())
        .map(|e| 1.0 + (e % 3) as f64)
        .collect();
    let inst = Instance::from_grid(grid, costs, weights).expect("valid instance");

    // 2. A reusable solver for k = 8 parts. The splitter is auto-selected
    //    from the instance's structure — grids get GridSplit (Theorem 19)
    //    — and constructed once; p = d/(d−1) = 2 for 2-dimensional grids.
    let solver = Solver::for_instance(&inst)
        .classes(8)
        .p(2.0)
        .splitter(SplitterChoice::Auto)
        .build()
        .expect("valid configuration");
    println!(
        "auto-selected splitter: {} (family: {})",
        solver.splitter_name(),
        solver.family()
    );

    // 3. Solve (Theorem 4 pipeline). Call `solve()` as often as you like —
    //    splitter and caches are reused across calls.
    let report = solver.solve();

    // 4. Inspect the guarantees, straight from the report.
    println!(
        "strictly balanced partition into {} parts of a {n}-vertex grid",
        report.k
    );
    println!(
        "  class weights:   {:?}",
        report
            .class_weights
            .iter()
            .map(|w| *w as i64)
            .collect::<Vec<_>>()
    );
    println!(
        "  balance slack:   ±{:.2} allowed (eq. 1), worst deviation {:.2}",
        report.strict_slack,
        report.strict_slack + report.strict_defect
    );
    println!(
        "  boundary costs:  max {:.1}, avg {:.1}",
        report.max_boundary, report.avg_boundary
    );
    println!(
        "  Theorem 5 bound: {:.1} (measured/bound = {:.2})",
        report.bound, report.bound_ratio
    );
    assert!(
        report.is_strictly_balanced(),
        "the pipeline guarantees eq. (1) by construction"
    );
    println!("  eq. (1) holds:   yes");
}
