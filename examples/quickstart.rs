//! Quickstart: decompose a weighted grid into k strictly balanced parts
//! with small maximum boundary cost.
//!
//! ```text
//! cargo run --release -p mmb-bench --example quickstart
//! ```

use mmb_core::prelude::*;
use mmb_graph::gen::grid::GridGraph;
use mmb_splitters::grid::GridSplitter;

fn main() {
    // 1. An instance: a 32×32 grid ("mesh cells"), per-vertex work, and
    //    per-edge communication costs.
    let grid = GridGraph::lattice(&[32, 32]);
    let n = grid.graph.num_vertices();
    let weights: Vec<f64> = (0..n).map(|v| 1.0 + ((v * 37) % 7) as f64).collect();
    let costs: Vec<f64> = (0..grid.graph.num_edges()).map(|e| 1.0 + (e % 3) as f64).collect();

    // 2. A splitter for the graph family — grids get GridSplit (Theorem 19).
    let splitter = GridSplitter::new(&grid, &costs);

    // 3. Decompose into k = 8 parts (Theorem 4 pipeline). p = d/(d−1) = 2
    //    for 2-dimensional grids.
    let k = 8;
    let d = decompose(
        &grid.graph,
        &costs,
        &weights,
        k,
        &splitter,
        &[],
        &PipelineConfig::with_p(2.0),
    )
    .expect("valid instance");

    // 4. Inspect the guarantees.
    let report = verify_decomposition(&grid.graph, &costs, &weights, &d.coloring);
    println!("strictly balanced partition into {k} parts of a {n}-vertex grid");
    println!("  class weights:   {:?}", report.class_weights.iter().map(|w| *w as i64).collect::<Vec<_>>());
    println!("  balance slack:   ±{:.2} allowed (eq. 1), worst deviation {:.2}",
        report.strict_slack,
        report.strict_slack + report.strict_defect);
    println!("  boundary costs:  max {:.1}, avg {:.1}", report.max_boundary, report.avg_boundary);
    assert!(report.is_valid(), "the pipeline guarantees eq. (1) by construction");
    println!("  eq. (1) holds:   yes");
}
